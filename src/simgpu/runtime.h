// The CUDA-like runtime surface of the simulated GPU.
//
// All operations take a HostContext - the per-rank handle bundling the
// shared Machine, the caller's virtual clock and its current device - and
// mirror the CUDA runtime calls the paper's implementation uses:
// cudaMalloc / cudaMallocHost / cudaMemcpy{2D,Async} / streams / events /
// kernel launch / CUDA IPC. Every call both moves real bytes and advances
// virtual time through the machine's timed resources.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "simgpu/access.h"
#include "simgpu/machine.h"
#include "simgpu/stream.h"

namespace gpuddt::sg {

/// Per-rank (per-thread) execution context.
struct HostContext {
  explicit HostContext(Machine& m, int dev = 0) : machine(&m), device(dev) {}

  Machine* machine;
  vt::VClock clock;
  int device = 0;

  Device& dev() const { return machine->device(device); }
  const CostModel& cost() const { return machine->cost(); }
};

// --- Memory management ------------------------------------------------------

/// cudaMalloc on the context's current device.
void* Malloc(HostContext& ctx, std::size_t bytes);
void Free(HostContext& ctx, void* ptr);

/// cudaMallocHost / cudaHostAlloc(cudaHostAllocMapped).
void* HostAlloc(HostContext& ctx, std::size_t bytes, bool mapped = false);
void HostFree(HostContext& ctx, void* ptr);

PtrAttributes PointerGetAttributes(const HostContext& ctx, const void* ptr);

// --- Copies -------------------------------------------------------------------

/// Synchronous cudaMemcpy (kind inferred from the pointer registry).
void Memcpy(HostContext& ctx, void* dst, const void* src, std::size_t bytes);

/// Asynchronous copy ordered in `stream`; returns the operation's virtual
/// finish time (also recorded as the stream tail).
vt::Time MemcpyAsync(HostContext& ctx, void* dst, const void* src,
                     std::size_t bytes, Stream& stream);

/// Synchronous cudaMemcpy2D: `height` rows of `width` bytes with the given
/// pitches. The cost model reproduces the 64-byte-granule behaviour of the
/// real copy engine (Figure 8).
void Memcpy2D(HostContext& ctx, void* dst, std::size_t dpitch, const void* src,
              std::size_t spitch, std::size_t width, std::size_t height);

vt::Time Memcpy2DAsync(HostContext& ctx, void* dst, std::size_t dpitch,
                       const void* src, std::size_t spitch, std::size_t width,
                       std::size_t height, Stream& stream);

/// Synchronous cudaMemcpy3D equivalent for pitched 3D blocks: `depth`
/// slices of (`height` rows x `width` bytes); slices are `dslice`/`sslice`
/// bytes apart, rows `dpitch`/`spitch` apart.
void Memcpy3D(HostContext& ctx, void* dst, std::size_t dpitch,
              std::size_t dslice, const void* src, std::size_t spitch,
              std::size_t sslice, std::size_t width, std::size_t height,
              std::size_t depth);

void Memset(HostContext& ctx, void* dst, int value, std::size_t bytes);

/// One-shot copy with an explicit virtual-time dependency, not bound to a
/// stream and not blocking the host clock: the building block of the BTL
/// RDMA engines (CUDA IPC get/put). Moves the bytes immediately, reserves
/// the appropriate resources (copy engine, PCI-E links) no earlier than
/// `earliest`, and returns the virtual finish time. `label` names the
/// operation in access-checker diagnostics.
vt::Time TimedCopy(HostContext& ctx, void* dst, const void* src,
                   std::size_t bytes, vt::Time earliest,
                   const char* label = "timed_copy");

/// Report a byte movement performed outside the runtime's own calls (for
/// example a BTL moving wire bytes with plain memcpy) to the machine's
/// access observer. No timing effect; no-op when checking is off.
void NoteAccess(HostContext& ctx, const char* label, vt::Time start,
                vt::Time finish, std::span<const MemRange> ranges);

// --- Streams and events --------------------------------------------------------

void StreamSynchronize(HostContext& ctx, Stream& stream);
Event EventRecord(HostContext& ctx, Stream& stream);
void StreamWaitEvent(HostContext& ctx, Stream& stream, const Event& ev);
void EventSynchronize(HostContext& ctx, const Event& ev);

/// Earliest time a consumer on `target_device` can act on `ev`, which was
/// recorded on `origin_device`'s timeline (device id, or the NIC modeled
/// as the far device). Crossing devices charges
/// `CostModel::cross_event_wait_ns` for the doorbell/flag propagation over
/// PCI-E; a same-device dependency is free. This is the cost model behind
/// stream-triggered fragment chains: every pack-ready, unpack-trigger and
/// credit-return dependency resolves through it instead of a host AM.
vt::Time EventReadyOn(const HostContext& ctx, const Event& ev,
                      int origin_device, int target_device);

/// StreamWaitEvent with the cross-device propagation cost applied:
/// `stream` will not run past the adjusted timestamp. Returns the
/// adjusted ready time.
vt::Time StreamWaitEventCross(HostContext& ctx, Stream& stream,
                              const Event& ev, int origin_device);

// --- Kernels ----------------------------------------------------------------------

/// Where a kernel's non-local traffic flows.
enum class PcieDir : std::uint8_t {
  kNone,      // both sides in local device memory
  kToHost,    // writes land in zero-copy mapped host memory
  kFromHost,  // reads come from zero-copy mapped host memory
  kPeer,      // one side lives in a peer device (CUDA IPC mapping)
};

/// Work descriptor a kernel reports to the timing model. The functional
/// body executes eagerly; the profile determines the virtual duration.
struct KernelProfile {
  /// Device-memory traffic in transaction-rounded bytes (reads + writes).
  std::int64_t device_txn_bytes = 0;
  /// Traffic crossing PCI-E (zero-copy host access or peer-device access;
  /// 0 when both sides are local device memory).
  std::int64_t pcie_bytes = 0;
  PcieDir pcie_dir = PcieDir::kNone;
  /// Total warp-rounds of work: one round = one warp copying 32 x 8 bytes.
  std::int64_t warp_rounds = 0;
  /// CUDA blocks the kernel is launched with; limits SM occupancy.
  int blocks = 1;
};

/// Launch a kernel on `stream`. `body` performs the functional byte
/// movement and runs immediately on the calling thread; the kernel's
/// virtual interval is reserved on the device's SM array (and PCI-E link
/// for zero-copy traffic). Returns the virtual finish time. `label` and
/// `ranges` describe the kernel's memory footprint to the access checker
/// (kernel wrappers populate them only when an observer is attached).
/// `triggered_at`, when non-null, marks a *pre-enqueued* (stream-triggered)
/// launch: the host already paid the enqueue cost when the chain was
/// submitted, so the calling clock is neither read nor advanced - the
/// launch is ordered after max(stream tail, *triggered_at) purely by
/// stream/event dependencies. Null (the default) is the ordinary
/// host-enqueued launch charging `enqueue_ns` at the current clock.
vt::Time LaunchKernel(HostContext& ctx, Stream& stream,
                      const KernelProfile& profile,
                      const std::function<void()>& body,
                      const char* label = "kernel",
                      std::span<const MemRange> ranges = {},
                      const vt::Time* triggered_at = nullptr);

/// Duration such a kernel occupies the SMs, excluding queueing (exposed
/// for the cost-model unit tests).
vt::Time KernelDuration(const CostModel& cm, const KernelProfile& profile,
                        int sms_available);

// --- CUDA IPC -----------------------------------------------------------------------

struct IpcMemHandle {
  int device = -1;
  std::uint64_t offset = 0;  // from the owning arena's base
  std::uint64_t size = 0;
};

/// cudaIpcGetMemHandle: handle for a device allocation, shareable with
/// other ranks on the same node.
IpcMemHandle IpcGetMemHandle(HostContext& ctx, void* device_ptr);

/// cudaIpcOpenMemHandle: map a peer's allocation. Costs ipc_open_ns; the
/// protocol layer caches handles (the "registration cache" of Section 4.1).
void* IpcOpenMemHandle(HostContext& ctx, const IpcMemHandle& handle);

}  // namespace gpuddt::sg
