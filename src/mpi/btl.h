// Byte Transfer Layer (BTL).
//
// The lowest layer of the Open MPI communication stack: actual byte
// movement over one kind of interconnect, plus one-sided RDMA primitives.
// Two BTLs are provided, matching the paper's evaluation platforms:
//   * SmBtl - intra-node shared memory; RDMA maps to CUDA IPC.
//   * IbBtl - simulated FDR InfiniBand between nodes; RDMA maps to
//             GPUDirect RDMA when enabled.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "mpi/runtime.h"
#include "vtime/resource.h"

namespace gpuddt::mpi {

class Btl {
 public:
  virtual ~Btl() = default;

  virtual const char* name() const = 0;

  /// Largest Active-Message payload one send may carry.
  virtual std::size_t max_am_payload() const = 0;

  /// Send an Active Message; the wire transfer begins no earlier than
  /// max(sender clock, earliest) and the message arrival carries the
  /// virtual completion time.
  /// Returns the message's virtual arrival (wire-completion) time.
  virtual vt::Time am_send(Process& src, int dst_rank, int handler,
                           std::vector<std::byte> payload,
                           vt::Time earliest) = 0;

  /// One-sided get: read `bytes` from `remote` (a pointer valid in this
  /// address space - IPC-mapped device memory or exposed host memory) into
  /// `local`. Returns the virtual finish time.
  virtual vt::Time rdma_get(Process& self, int peer_rank, void* local,
                            const void* remote, std::size_t bytes,
                            vt::Time earliest) = 0;

  /// One-sided put (same conventions).
  virtual vt::Time rdma_put(Process& self, int peer_rank, void* remote,
                            const void* local, std::size_t bytes,
                            vt::Time earliest) = 0;

  /// Can device memory be moved directly between these endpoints (CUDA
  /// IPC intra-node / GPUDirect RDMA inter-node)?
  virtual bool supports_gpu_rdma(const Process& self, int peer) const = 0;

  /// Largest message the direct GPU-RDMA path should carry. CUDA IPC has
  /// no practical limit; GPUDirect RDMA over the wire only pays off for
  /// small messages (< ~30KB per [14]; larger transfers pipeline through
  /// host memory instead - Section 5.2).
  virtual std::int64_t gpu_rdma_limit(const Process& self) const = 0;
};

/// Intra-node shared-memory BTL. Per ordered rank pair, one serialized
/// channel models the copy bandwidth between the two processes.
class SmBtl : public Btl {
 public:
  explicit SmBtl(Runtime& rt) : rt_(rt) {}

  const char* name() const override { return "sm"; }
  std::size_t max_am_payload() const override { return 1 << 20; }
  vt::Time am_send(Process& src, int dst_rank, int handler,
                   std::vector<std::byte> payload, vt::Time earliest) override;
  vt::Time rdma_get(Process& self, int peer_rank, void* local,
                    const void* remote, std::size_t bytes,
                    vt::Time earliest) override;
  vt::Time rdma_put(Process& self, int peer_rank, void* remote,
                    const void* local, std::size_t bytes,
                    vt::Time earliest) override;
  bool supports_gpu_rdma(const Process& self, int peer) const override;
  std::int64_t gpu_rdma_limit(const Process& /*self*/) const override {
    return INT64_MAX;
  }

 private:
  vt::TimedResource& channel(int a, int b);

  Runtime& rt_;
  std::mutex mu_;
  std::map<std::pair<int, int>, std::unique_ptr<vt::TimedResource>> chans_;
};

/// Inter-node simulated InfiniBand BTL: one full-duplex-ish serialized
/// link per node pair.
class IbBtl : public Btl {
 public:
  explicit IbBtl(Runtime& rt) : rt_(rt) {}

  const char* name() const override { return "ib"; }
  std::size_t max_am_payload() const override { return 1 << 20; }
  vt::Time am_send(Process& src, int dst_rank, int handler,
                   std::vector<std::byte> payload, vt::Time earliest) override;
  vt::Time rdma_get(Process& self, int peer_rank, void* local,
                    const void* remote, std::size_t bytes,
                    vt::Time earliest) override;
  vt::Time rdma_put(Process& self, int peer_rank, void* remote,
                    const void* local, std::size_t bytes,
                    vt::Time earliest) override;
  bool supports_gpu_rdma(const Process& self, int peer) const override;
  std::int64_t gpu_rdma_limit(const Process& self) const override;

 private:
  /// Pick the rail for the next large transfer on this directional node
  /// pair (round-robin), and return its link resource.
  vt::TimedResource& link(int node_a, int node_b, bool large);

  /// Leaf switch of a node under the configured fat tree, or -1 when the
  /// fabric is a single full-bisection switch (the default).
  int leaf_of(int node) const;

  /// The shared spine uplink a cross-leaf transfer crosses at `leaf` in
  /// the given direction (0 = toward the spine, 1 = from it). Large
  /// transfers round-robin over the leaf's uplinks; control traffic
  /// stays on uplink 0, mirroring the rail policy one level down.
  vt::TimedResource& leaf_uplink(int leaf, int direction, bool large);

  /// Charge a cross-leaf transfer's detour over both leaves' shared
  /// uplinks; returns the (possibly later) finish time. No-op returning
  /// `wire.finish` when src and dst share a leaf or no fat tree is
  /// configured.
  vt::Time charge_fat_tree(Process& p, int src_node, int dst_node,
                           std::int64_t bytes, bool large,
                           vt::Reservation wire);

  Runtime& rt_;
  std::mutex mu_;
  /// Directional links keyed by (src node, dst node, rail).
  std::map<std::tuple<int, int, int>, std::unique_ptr<vt::TimedResource>>
      links_;
  std::map<std::pair<int, int>, int> next_rail_;
  /// Shared fat-tree uplinks keyed by (leaf, direction, uplink index).
  std::map<std::tuple<int, int, int>, std::unique_ptr<vt::TimedResource>>
      leaf_links_;
  std::map<std::pair<int, int>, int> next_uplink_;
};

}  // namespace gpuddt::mpi
