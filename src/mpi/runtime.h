// The mini-MPI runtime.
//
// Mirrors the Open MPI architecture the paper integrates into:
//   * Runtime  - launches one thread per rank on a shared simulated
//                Machine, owns the BTL instances and the Active-Message
//                handler table (the paper's Section 4 plumbing).
//   * Process  - the per-rank context: virtual clock, GPU HostContext,
//                inbox of Active Messages, PML instance.
//
// Ranks are threads of this process; a rank-to-node map decides whether a
// pair of ranks communicates over the shared-memory BTL or the simulated
// InfiniBand BTL.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "simgpu/runtime.h"
#include "vtime/engine.h"
#include "vtime/vclock.h"

namespace gpuddt::obs {
class Recorder;
}

namespace gpuddt::mpi {

class Runtime;
class Process;
class Pml;
class Btl;
class Bml;
class GpuTransferPlugin;

/// Which engine drives the deterministic cooperative schedule.
enum class SchedBackend {
  kAuto,     ///< GPUDDT_SIM_BACKEND env ("event"/"threads"), else kEvent
  kThreads,  ///< legacy mpi::TurnScheduler: one parked OS thread per rank
  kEvent,    ///< vt::EventEngine: resumable continuations, one OS thread
};

/// Resolve kAuto against the GPUDDT_SIM_BACKEND environment variable
/// ("event" or "threads"/"thread"; anything else throws). Exposed so
/// benches/tests can report which backend a run actually used.
SchedBackend resolve_sched_backend(SchedBackend configured);

/// A BTL-level Active Message: the receiver runs the registered handler
/// for `handler` when it progresses its inbox ([4] in the paper).
struct AmMessage {
  int handler = 0;
  int src_rank = -1;
  vt::Time arrival = 0;  // virtual time the bytes are available
  std::vector<std::byte> payload;
};

using AmHandler = std::function<void(Process&, AmMessage&)>;

struct RuntimeConfig {
  int world_size = 2;
  /// Ranks [k*ranks_per_node, (k+1)*ranks_per_node) live on node k and
  /// talk over the shared-memory BTL; other pairs use the IB BTL.
  int ranks_per_node = 1 << 30;  // default: single node
  /// Device selection; default: rank % num_devices.
  std::function<int(int)> device_of;
  sg::MachineConfig machine;

  // --- PML / protocol knobs ---------------------------------------------
  std::size_t eager_limit = 64 * 1024;
  /// Device-resident sends at or below this size skip the rendezvous
  /// handshake entirely: the engine packs into a zero-copy host buffer
  /// and the bytes travel as one eager Active Message (the "short/eager"
  /// tier of the paper's Section 4 protocol selection).
  std::size_t gpu_eager_limit = 16 * 1024;
  std::size_t frag_bytes = 512 * 1024;       // host rendezvous fragment
  std::size_t gpu_frag_bytes = 512 * 1024;   // GPU pipeline fragment
  int gpu_pipeline_depth = 4;                // staging slots
  bool ipc_enabled = true;        // CUDA IPC available within a node
  bool gpudirect_rdma = false;    // direct GPU<->NIC path (off: host staging)
  /// Number of InfiniBand rails per node pair; large messages round-robin
  /// across them (the BML's multi-link transfer management).
  int ib_rails = 1;
  /// Above this size GPUDirect RDMA loses to host staging ([14], ~30KB);
  /// the protocol falls back to the pipelined copy-in/out.
  std::int64_t gpudirect_limit_bytes = 30 * 1024;
  bool zero_copy = true;          // UMA-mapped host bounce buffers
  /// Receiver of an inter-GPU RDMA copies packed fragments into a local
  /// staging buffer before unpacking (Section 5.2: 10-20% faster than
  /// unpacking straight out of remote device memory).
  bool recv_local_staging = true;
  /// Pipelined RDMA direction (Section 4.1 mentions both): GET (default,
  /// receiver pulls each packed fragment from the sender's exposed
  /// staging) or PUT (the sender pushes each fragment into the receiver's
  /// exposed staging ring).
  bool rdma_put_mode = false;
  /// Stream-triggered fragment chains (docs/protocols.md): pre-enqueue
  /// the whole pack -> RDMA GET -> unpack -> credit chain as stream/event
  /// dependencies after one rendezvous, removing the per-fragment
  /// FragReady/FragFree host round-trips. Tri-state: -1 follows the
  /// process-wide default (mpi::stream_triggered_enabled: forced >
  /// GPUDDT_STREAM_TRIGGERED env > build option), 0/1 force off/on.
  int stream_triggered = -1;
  /// Work-unit size S of the GPU datatype engine (Section 3.2).
  std::int64_t dev_unit_bytes = 1024;
  bool dev_cache_enabled = true;
  /// Byte bound on each rank's DEV cache descriptor footprint (0 = entry
  /// budget only).
  std::int64_t dev_cache_max_bytes = 0;
  /// Pipeline host-side DEV conversion with kernel execution (Section 3.2;
  /// off reproduces the Figure 7 non-pipelined baseline).
  bool dev_pipeline_conversion = true;
  /// CUDA blocks per pack/unpack kernel (Section 5.3 resource sweep).
  int gpu_kernel_blocks = 64;
  /// Force the copy-in/out protocol even when IPC would be available.
  bool force_copy_inout = false;

  /// Cooperative deterministic scheduling (vtime/engine.h, mpi/sched.h):
  /// ranks take round-robin turns instead of free-running, so every touch
  /// of shared virtual-time state (arenas, timed resources, inboxes)
  /// happens in a program-defined order and repeat runs are
  /// bit-identical. Off restores the legacy free-running threads with the
  /// real-time deadlock timeout.
  bool deterministic = true;

  /// Which scheduler implements the deterministic rotation. Both backends
  /// produce byte-identical virtual schedules (the equivalence suite pins
  /// this); the event backend is the default and scales to 1000+ ranks.
  /// Precedence: this field > GPUDDT_SIM_BACKEND env > event.
  SchedBackend sched_backend = SchedBackend::kAuto;

  /// Usable stack bytes per rank continuation (event backend only). Rank
  /// bodies run protocol code on these stacks; the default fits the
  /// deepest existing path (collectives over rendezvous over DEV) with
  /// ample headroom, and a guard page faults on overflow.
  std::size_t sim_stack_bytes = std::size_t{1} << 20;

  /// Real-time guard for the non-deterministic mode: a blocking progress
  /// loop that sees no traffic for this many milliseconds aborts the run.
  /// (The deterministic scheduler detects deadlock exactly instead.)
  int progress_timeout_ms = 30000;

  /// Optional observability sink shared by every rank (counters,
  /// histograms, trace events; see obs/recorder.h). Nullable - the
  /// runtime is silent when unset. Thread-safe by construction.
  obs::Recorder* recorder = nullptr;
};

/// Per-rank context. All of a rank's protocol state is mutated only from
/// its own thread (AM handlers run during that rank's progress calls).
class Process {
 public:
  Process(Runtime& rt, int rank);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  int rank() const { return rank_; }
  int size() const;
  int node() const { return node_; }

  Runtime& runtime() { return rt_; }
  const RuntimeConfig& config() const;

  /// The rank's virtual clock (shared with its GPU context).
  vt::VClock& clock() { return gpu_.clock; }
  sg::HostContext& gpu() { return gpu_; }

  Pml& pml() { return *pml_; }

  // --- Messaging -------------------------------------------------------
  /// Send an Active Message to `dst` through the right BTL. `earliest`
  /// expresses a virtual-time dependency (e.g. a pack-kernel finish); the
  /// wire transfer starts no earlier than max(clock, earliest).
  vt::Time am_send(int dst, int handler, std::vector<std::byte> payload,
                   vt::Time earliest = 0);

  /// Drain and dispatch pending messages; returns true if any ran.
  bool progress();

  /// Block until at least one message is processed (with the deadlock
  /// timeout from the config).
  void progress_blocking();

  /// Called by peer threads to enqueue a message.
  void deliver(AmMessage&& m);

  /// Node id of another rank.
  int node_of(int rank) const;

 private:
  Runtime& rt_;
  int rank_;
  int node_;
  sg::HostContext gpu_;
  std::unique_ptr<Pml> pml_;

  std::mutex inbox_mu_;
  std::condition_variable inbox_cv_;
  std::deque<AmMessage> inbox_;
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig cfg);
  ~Runtime();

  const RuntimeConfig& config() const { return cfg_; }
  sg::Machine& machine() { return *machine_; }

  /// Register an Active-Message handler; must happen before run(). The
  /// returned id is consistent across ranks (single registration table).
  int register_handler(AmHandler h);

  const AmHandler& handler(int id) const { return handlers_.at(id); }

  /// Install the GPU transfer plugin (the paper's datatype-engine
  /// integration). Must precede run(); may be null (host-only MPI).
  void set_gpu_plugin(std::shared_ptr<GpuTransferPlugin> plugin);
  GpuTransferPlugin* gpu_plugin() { return plugin_.get(); }

  /// SPMD entry: run `fn` once per rank. Under the default event backend
  /// every rank is a resumable continuation dispatched by one event loop
  /// on the calling thread; the thread backends spawn one OS thread per
  /// rank. The lowest-failing-rank exception is rethrown at the end.
  void run(const std::function<void(Process&)>& fn);

  Process& process(int rank) { return *procs_.at(rank); }
  Btl& btl_between(int a, int b);
  Bml& bml() { return *bml_; }

  int device_of(int rank) const;
  int node_of(int rank) const {
    return rank / cfg_.ranks_per_node;
  }

  /// The cooperative scheduler; null when config().deterministic is off
  /// or outside run().
  vt::TaskScheduler* scheduler() { return sched_; }

  /// Event-loop counters from the last run (all zero after thread-backend
  /// or free-running runs). Deterministic for a fixed program, so
  /// bench_sim_throughput gates them byte-exactly.
  const vt::EngineStats& sim_stats() const { return sim_stats_; }

 private:
  void run_threads(const std::function<void(Process&)>& fn, bool cooperative);
  void run_event_loop(const std::function<void(Process&)>& fn);

  RuntimeConfig cfg_;
  std::unique_ptr<sg::Machine> machine_;
  std::vector<AmHandler> handlers_;
  std::shared_ptr<GpuTransferPlugin> plugin_;
  std::unique_ptr<Bml> bml_;
  std::vector<std::unique_ptr<Process>> procs_;
  vt::TaskScheduler* sched_ = nullptr;
  vt::EngineStats sim_stats_;
  bool ran_ = false;
};

}  // namespace gpuddt::mpi
