// Deterministic cooperative scheduling of the one-thread-per-rank runtime.
//
// The simulator keeps one OS thread per MPI rank, but virtual time lives in
// state shared between those threads: device arenas, the timed resources of
// every device, and each process's inbox. With free-running threads the
// *real-time* order in which two ranks hit a shared arena or reserve a
// shared PCI-E link decides allocation offsets and reservation start times,
// so identical runs produce slightly different virtual schedules (the
// ROADMAP's fig10 jitter, and reservation-order jitter in every
// shared-resource bench).
//
// TurnScheduler removes the races without giving up the thread-per-rank
// structure: exactly one rank thread executes at a time, and the turn is
// handed over only at deterministic program points -
//
//   * a rank blocks waiting for messages and its inbox is empty
//     (Process::progress_blocking), or
//   * a rank polls an empty inbox (Process::progress from iprobe/test
//     spin loops) - it yields one round-robin turn but stays runnable, or
//   * a rank's SPMD function returns (or throws).
//
// The successor is always the next runnable rank in round-robin order, so
// the global interleaving - and with it every allocation offset, resource
// reservation order and inbox arrival order - is a pure function of the
// program. A side benefit: "all remaining ranks blocked on empty inboxes"
// is detected exactly, so deadlocks surface immediately instead of after
// RuntimeConfig::progress_timeout_ms.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "vtime/engine.h"

namespace gpuddt::mpi {

/// The legacy thread-backed scheduler. The default backend is now the
/// event-driven vt::EventEngine (vtime/engine.h), which implements the
/// identical handoff policy with resumable continuations instead of
/// parked OS threads; TurnScheduler is kept as the reference
/// implementation the scheduler-equivalence suite replays against.
class TurnScheduler final : public vt::TaskScheduler {
 public:
  explicit TurnScheduler(int nranks);

  /// Block until it is `rank`'s first turn. Called once per rank thread
  /// before any user code runs; rank 0 goes first.
  void start(int rank);

  /// The rank's thread is leaving (normal return or exception): drop out
  /// of the rotation and hand the turn onward.
  void finish(int rank);

  /// Yield the turn until a message is pending for `rank`. Returns
  /// immediately if one was delivered since the last wait. Throws
  /// vt::DeadlockError when every remaining rank is blocked on an empty
  /// inbox (deadlock); the message lists each blocked rank's pending
  /// operations when a block describer is installed.
  void wait_for_message(int rank) override;

  /// Polling yield (empty-inbox Process::progress): give every other
  /// runnable rank one turn, then resume. The caller stays runnable, so
  /// iprobe/test spin loops cannot starve their peers. No-op when no
  /// other rank can run.
  void yield(int rank) override;

  /// A message was delivered to `dst`'s inbox. Called by the turn holder
  /// (the only executing thread) from Process::deliver.
  void note_message(int dst) override;

  /// Install the pending-op describer consulted when composing deadlock
  /// reports. Called while the turn holder executes and every other
  /// thread is parked, so it may read cross-rank protocol state.
  void set_block_describer(vt::BlockDescriber d) override;

 private:
  enum class State { kRunnable, kBlocked, kFinished };

  /// Pick the next runnable rank after `from` (round-robin) and wake it;
  /// flags deadlock (and composes the report) when only blocked ranks
  /// remain.
  void pass_turn_locked(int from);
  [[noreturn]] void throw_deadlock() const;

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<State> state_;
  std::vector<bool> pending_;  // message delivered since last wait/poll
  vt::BlockDescriber describer_;
  std::string deadlock_report_;
  int active_ = 0;
  bool deadlock_ = false;
};

}  // namespace gpuddt::mpi
