// Point-to-point Management Layer (PML).
//
// MPI matching, protocol selection and fragmentation, one instance per
// rank. Host-resident data uses the classic eager / rendezvous protocols
// with the CPU datatype engine; any transfer touching device memory is
// delegated to the installed GpuTransferPlugin (implemented in
// src/protocols - the paper's contribution), via the same RTS/CTS wire
// protocol so host and device endpoints interoperate.
#pragma once

#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "mpi/cpu_pack.h"
#include "mpi/cursor.h"
#include "mpi/datatype.h"
#include "mpi/runtime.h"

namespace gpuddt::mpi {

constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

struct Envelope {
  std::int32_t context = 0;
  std::int32_t src = -1;
  std::int32_t dst = -1;
  std::int32_t tag = 0;
};

struct Status {
  int source = -1;
  int tag = -1;
  std::int64_t bytes = 0;
};

/// User-visible request handle. Mutated only on the owning rank's thread.
struct RequestState {
  bool done = false;
  Status status;  // status.source is a world rank until translated
  /// Set for sub-communicator receives: translates status.source to a
  /// group rank on completion (see Pml::wait / Comm::irecv).
  std::shared_ptr<const std::vector<int>> group;
};
using Request = std::shared_ptr<RequestState>;

// --- Wire protocol headers (POD, memcpy'd into AM payloads) -------------------

/// Rendezvous RTS: sender -> receiver.
struct RtsHeader {
  Envelope env;
  std::uint64_t send_id = 0;
  std::int64_t total_bytes = 0;  // packed size of the message
  std::uint8_t src_is_device = 0;
  std::uint8_t src_contiguous = 0;
  std::uint8_t has_handle = 0;  // `handle` exposes sender memory via IPC
  std::int32_t src_device = -1;
  std::int32_t src_node = -1;
  sg::IpcMemHandle handle;      // staging buffer, or the source if contiguous
  /// For a contiguous source exposed via `handle`: byte offset of packed
  /// byte 0 from the handle's base (the datatype's leading displacement).
  std::int64_t src_disp = 0;
  std::int64_t frag_bytes = 0;  // sender's pipeline geometry
  std::int32_t depth = 0;
  std::uint64_t sig_hash = 0;  // datatype signature (sanity check)
};

/// Transfer modes a receiver may select in its CTS.
enum class TransferMode : std::uint8_t {
  /// Stream packed fragments as AM payloads through host memory: the host
  /// rendezvous protocol and, when an endpoint is a GPU, the paper's
  /// copy-in/copy-out protocol (Section 4.2).
  kHostFrags = 0,
  /// Pipelined RDMA through the sender's exposed staging buffer
  /// (Section 4.1); both endpoints device-resident, IPC available.
  kIpcRdma = 1,
  /// Contiguous receiver exposed its destination; sender packs straight
  /// into it (Section 4.1 handshake shortcut).
  kRdmaPackToRemote = 2,
  /// Contiguous sender exposed its source; receiver pulls and unpacks on
  /// its own, sender only waits for the final fin (other shortcut).
  kRdmaRecvDriven = 3,
  /// Stream-triggered chain (docs/protocols.md): after this one CTS, the
  /// whole per-fragment pack -> RDMA GET -> unpack -> credit-return chain
  /// is pre-enqueued as stream/event dependencies on both GPUs. No
  /// FragReady/FragFree AMs, no per-fragment host wakeups; only the final
  /// fin touches the host. Negotiated only when both sides opted in
  /// (mpi::stream_triggered_enabled) and the kIpcRdma GET preconditions
  /// hold.
  kStreamTriggered = 4,
};

/// CTS: receiver -> sender.
struct CtsHeader {
  std::uint64_t send_id = 0;
  std::uint64_t recv_id = 0;
  TransferMode mode = TransferMode::kHostFrags;
  std::uint8_t has_handle = 0;
  sg::IpcMemHandle handle;  // receiver memory exposed to the sender
  /// kRdmaPackToRemote: offset of packed byte 0 within the exposed region.
  std::int64_t remote_disp = 0;
  std::int64_t frag_bytes = 0;
  std::int32_t depth = 0;
};

/// Data fragment header (kHostFrags mode); payload bytes follow.
struct FragHeader {
  std::uint64_t recv_id = 0;
  std::int64_t offset = 0;
  std::int64_t bytes = 0;
  std::uint8_t last = 0;
};

/// Globally-unique fragment flow id tying one fragment's trace spans
/// (conv -> H2D desc -> pack kernel -> wire/RDMA GET -> unpack) together
/// across ranks (docs/tracing.md). A pure function of values both sides
/// already hold - the AM's source rank, the RTS-carried send id, and the
/// fragment's in-order index - so sender and receiver compute identical
/// ids with no extra wire bytes (AM payload size is charged to the
/// virtual clock, so widening a header would shift every baseline).
/// Send ids are per-rank monotone, making (src rank, send id, fragment
/// index) globally unique. Never 0 (rank is biased by 1), and kept below
/// 2^53 so the id survives JSON parsers that store numbers as doubles
/// (obs/json.h): 13 bits of rank, 20 of send id, 20 of fragment index.
inline std::uint64_t frag_flow(int src_rank, std::uint64_t send_id,
                               std::int64_t frag_idx) {
  return (static_cast<std::uint64_t>(src_rank + 1) << 40) |
         ((send_id & 0xFFFFFull) << 20) |
         (static_cast<std::uint64_t>(frag_idx) & 0xFFFFFull);
}

/// Cross-rank flow id of one collective invocation. Every member rank
/// computes the same id from state it already holds - the communicator
/// context and the per-instance collective epoch (identical across ranks
/// because collectives must be called in the same order on a
/// communicator) - so the member spans of one bcast/reduce/... chain into
/// one Chrome flow with no extra wire bytes. Lives in frag_flow's
/// reserved all-ones rank slot (rank field 0x1FFF), which no real rank
/// can produce, so collective flows never collide with fragment flows.
inline std::uint64_t coll_flow(int context, int epoch) {
  return (std::uint64_t{0x1FFF} << 40) |
         ((static_cast<std::uint64_t>(context) & 0xFFFFFull) << 20) |
         (static_cast<std::uint64_t>(epoch) & 0xFFFFFull);
}

/// Completion notification for RDMA modes.
struct FinHeader {
  std::uint64_t req_id = 0;   // send_id or recv_id depending on direction
  std::uint8_t to_sender = 0;
};

// --- Requests -----------------------------------------------------------------------

/// Opaque per-request protocol state owned by the GPU plugin.
struct PluginState {
  virtual ~PluginState() = default;
};

struct SendRequest {
  std::uint64_t id = 0;
  Envelope env;
  const void* buf = nullptr;
  DatatypePtr dt;
  std::int64_t count = 0;
  std::int64_t total_bytes = 0;
  sg::PtrAttributes space;
  Request user;

  // Host-path state.
  BlockCursor cursor;
  std::uint64_t peer_recv_id = 0;

  // Rendezvous latency bookkeeping (virtual time; 0 = not applicable).
  vt::Time rts_sent = 0;

  // GPU-path state.
  std::unique_ptr<PluginState> plugin;
};

struct RecvRequest {
  std::uint64_t id = 0;
  // Matching criteria (src/tag may be wildcards).
  std::int32_t context = 0;
  std::int32_t src = kAnySource;
  std::int32_t tag = kAnyTag;
  void* buf = nullptr;
  DatatypePtr dt;
  std::int64_t count = 0;
  std::int64_t total_bytes = 0;
  sg::PtrAttributes space;
  Request user;
  bool matched = false;
  Envelope matched_env;

  // Host-path state.
  BlockCursor cursor;
  std::int64_t bytes_received = 0;

  // Fragment-flow bookkeeping (frag_flow; trace-only, never on the wire).
  std::uint64_t peer_send_id = 0;  // RTS-carried sender request id
  std::int64_t frags_seen = 0;     // fragments arrived (in-order index)
  std::uint64_t last_flow = 0;     // flow id of the fragment in flight

  // Rendezvous latency bookkeeping (virtual time; 0 = not applicable).
  vt::Time cts_sent = 0;
  vt::Time first_frag_arrival = 0;
  vt::Time last_frag_arrival = 0;

  // GPU-path state.
  std::unique_ptr<PluginState> plugin;
};

/// Interface the protocols module implements (the paper's GPU datatype
/// engine integration). Installed once on the Runtime.
class GpuTransferPlugin {
 public:
  virtual ~GpuTransferPlugin() = default;

  /// Register protocol-specific AM handlers; called once before run().
  virtual void attach(Runtime& rt) = 0;

  /// Sender side, device source buffer: emit the RTS (allocating staging
  /// and exposing IPC handles as appropriate).
  virtual void send_start(Process& p, SendRequest& req) = 0;

  /// Sender side: CTS arrived for a device-source send.
  virtual void send_on_cts(Process& p, SendRequest& req,
                           const CtsHeader& cts, vt::Time arrival) = 0;

  /// Receiver side: an RTS matched a posted recv and either endpoint is
  /// device-resident. Must choose the TransferMode, reply CTS, and own the
  /// transfer until completion.
  virtual void recv_start(Process& p, RecvRequest& req, const RtsHeader& rts,
                          vt::Time arrival) = 0;

  /// Receiver side, kHostFrags mode with a device destination: one packed
  /// fragment arrived.
  virtual void recv_on_frag(Process& p, RecvRequest& req,
                            const FragHeader& hdr,
                            std::span<const std::byte> data,
                            vt::Time arrival) = 0;

  /// Receiver side: a small eager message (host-packed payload) matched a
  /// recv whose destination lives in device memory.
  virtual void recv_eager(Process& p, RecvRequest& req,
                          std::span<const std::byte> data,
                          vt::Time arrival) = 0;

  /// Receiver side: the sender's completion fin arrived for a recv this
  /// plugin owns (req.plugin set). Runs on the receiver's thread just
  /// before Pml::complete_recv - the stream-triggered chain finalizes its
  /// engine op and frees staging here, since no per-fragment AM ever
  /// wakes the receiver. Default: nothing (host-driven modes finished
  /// their op before the fin was sent).
  virtual void recv_fin(Process& p, RecvRequest& req, vt::Time arrival) {
    (void)p;
    (void)req;
    (void)arrival;
  }
};

// --- PML -----------------------------------------------------------------------------

class Pml {
 public:
  explicit Pml(Process& p);
  ~Pml();

  Request isend(const void* buf, std::int64_t count, const DatatypePtr& dt,
                int dst, int tag, int context = 0);
  Request irecv(void* buf, std::int64_t count, const DatatypePtr& dt, int src,
                int tag, int context = 0);

  void wait(const Request& r);
  void waitall(std::span<Request> rs);

  /// Non-blocking completion check (MPI_Test): progresses once and
  /// reports whether the request finished.
  bool test(const Request& r);

  /// Block until at least one request completes; returns its index
  /// (MPI_Waitany). All requests already complete returns the first.
  std::size_t waitany(std::span<const Request> rs);

  /// Non-blocking probe of the unexpected queue (MPI_Iprobe): true when a
  /// matching message is waiting; fills `st` with its envelope/size.
  bool iprobe(int src, int tag, int context, Status* st);

  /// One-line summary of this rank's in-flight operations - unmatched
  /// posted receives (src/tag/context wildcards spelled out), matched
  /// receives still transferring, and pending sends - in deterministic
  /// (id-sorted) order. The schedulers' deadlock reports are built from
  /// this, so a hang names the operations each rank is stuck on instead
  /// of just its id.
  std::string pending_summary() const;

  /// Register the PML's AM handlers (once per Runtime, before run()).
  static void register_handlers(Runtime& rt);

  /// Handler ids the GPU plugin targets directly: completion fins and the
  /// kHostFrags data fragments (shared with the host rendezvous so host
  /// and device endpoints interoperate).
  static int fin_handler() { return h_fin_; }
  static int frag_handler() { return h_frag_; }
  static int rts_handler() { return h_rts_; }
  static int cts_handler() { return h_cts_; }

  // Accessors the GPU plugin uses to find requests from AM handlers.
  SendRequest* find_send(std::uint64_t id);
  RecvRequest* find_recv(std::uint64_t id);
  void complete_send(SendRequest& req);
  void complete_recv(RecvRequest& req);

  /// Charge the calling rank's clock for a CPU pack/unpack of `st`.
  void charge_cpu_pack(const PackStats& st);

  /// Draw one id from this rank's per-request id space (the same counter
  /// isend/irecv use). Collective and one-sided engine drivers use it as
  /// the send_id component of mpi::frag_flow, so their trace flows can
  /// never collide with a point-to-point request's flows on this rank.
  std::uint64_t allocate_id() { return next_id_++; }

  /// Ship an already-packed eager payload (the GPU plugin's small-message
  /// path); the wire transfer starts no earlier than `earliest`. The
  /// caller completes its own request.
  vt::Time send_packed_eager(const Envelope& env,
                             std::span<const std::byte> packed,
                             vt::Time earliest);

 private:
  struct Unexpected {
    Envelope env;
    bool is_rts = false;
    RtsHeader rts;
    std::vector<std::byte> eager_data;  // packed payload for eager sends
    vt::Time arrival = 0;
  };

  // AM handler bodies.
  void on_eager(AmMessage& m);
  void on_rts(AmMessage& m);
  void on_cts(AmMessage& m);
  void on_frag(AmMessage& m);
  void on_fin(AmMessage& m);

  void start_host_rendezvous_send(SendRequest& req);
  void stream_host_frags(SendRequest& req, const CtsHeader& cts);
  void deliver_eager_to_recv(RecvRequest& req, const Unexpected& u);
  void handle_matched_rts(RecvRequest& req, const RtsHeader& rts,
                          vt::Time arrival);
  bool try_match_posted(const Envelope& env, RecvRequest** out);

  Process& proc_;
  std::uint64_t next_id_;
  std::unordered_map<std::uint64_t, std::unique_ptr<SendRequest>> sends_;
  std::unordered_map<std::uint64_t, std::unique_ptr<RecvRequest>> recvs_;
  std::list<RecvRequest*> posted_;
  std::list<Unexpected> unexpected_;

  // Handler ids (shared across ranks; set by register_handlers).
  static int h_eager_, h_rts_, h_cts_, h_frag_, h_fin_;

  friend class Process;
};

// --- User-facing communicator ---------------------------------------------------------

/// MPI-like communicator facade over a Process. The world communicator is
/// `Comm(process)`; `split(color, key)` derives sub-communicators with
/// their own rank numbering and matching context, like MPI_Comm_split.
class Comm {
 public:
  explicit Comm(Process& p, int context = 0) : p_(&p), context_(context) {}

  int rank() const { return group_ ? my_rank_ : p_->rank(); }
  int size() const {
    return group_ ? static_cast<int>(group_->size()) : p_->size();
  }
  Process& process() const { return *p_; }
  int context() const { return context_; }

  /// Group rank -> world rank.
  int world_rank(int r) const {
    return group_ ? group_->at(static_cast<std::size_t>(r)) : r;
  }
  /// World rank -> group rank (-1 if not a member).
  int group_rank(int world) const {
    if (!group_) return world;
    for (std::size_t i = 0; i < group_->size(); ++i)
      if ((*group_)[i] == world) return static_cast<int>(i);
    return -1;
  }

  /// Collective over this communicator: partition by `color` and order
  /// the new ranks by (key, old rank) - MPI_Comm_split.
  Comm split(int color, int key) const;

  /// Collective duplicate: same group, fresh matching context
  /// (MPI_Comm_dup) - traffic on the duplicate never matches the parent.
  Comm dup() const { return split(0, rank()); }

  Request isend(const void* buf, std::int64_t count, const DatatypePtr& dt,
                int dst, int tag) const {
    return p_->pml().isend(buf, count, dt, world_rank(dst), tag, context_);
  }
  Request irecv(void* buf, std::int64_t count, const DatatypePtr& dt, int src,
                int tag) const {
    Request r = p_->pml().irecv(
        buf, count, dt, src == kAnySource ? kAnySource : world_rank(src), tag,
        context_);
    if (group_) r->group = group_;  // translate status.source at completion
    return r;
  }
  void send(const void* buf, std::int64_t count, const DatatypePtr& dt,
            int dst, int tag) const {
    auto r = isend(buf, count, dt, dst, tag);
    p_->pml().wait(r);
  }
  Status recv(void* buf, std::int64_t count, const DatatypePtr& dt, int src,
              int tag) const {
    auto r = irecv(buf, count, dt, src, tag);
    p_->pml().wait(r);
    return r->status;
  }
  void wait(const Request& r) const { p_->pml().wait(r); }
  void waitall(std::span<Request> rs) const { p_->pml().waitall(rs); }
  bool test(const Request& r) const { return p_->pml().test(r); }
  std::size_t waitany(std::span<const Request> rs) const {
    return p_->pml().waitany(rs);
  }
  bool iprobe(int src, int tag, Status* st = nullptr) const {
    return p_->pml().iprobe(
        src == kAnySource ? kAnySource : world_rank(src), tag, context_, st);
  }

  /// Combined send+receive without deadlock (MPI_Sendrecv).
  Status sendrecv(const void* sendbuf, std::int64_t sendcount,
                  const DatatypePtr& senddt, int dst, int sendtag,
                  void* recvbuf, std::int64_t recvcount,
                  const DatatypePtr& recvdt, int src, int recvtag) const {
    Request r = irecv(recvbuf, recvcount, recvdt, src, recvtag);
    Request s = isend(sendbuf, sendcount, senddt, dst, sendtag);
    wait(r);
    wait(s);
    return r->status;
  }

  /// Dissemination barrier on an internal tag.
  void barrier() const;

 private:
  Comm(Process& p, int context, std::shared_ptr<const std::vector<int>> group,
       int my_rank)
      : p_(&p), context_(context), group_(std::move(group)),
        my_rank_(my_rank) {}

  Process* p_;
  int context_;
  std::shared_ptr<const std::vector<int>> group_;  // null = world
  int my_rank_ = -1;
};

/// Persistent communication request (MPI_Send_init / MPI_Recv_init):
/// freezes the argument list once, then start()/wait() per iteration -
/// the idiom of stencil halo loops.
class PersistentRequest {
 public:
  static PersistentRequest send_init(const Comm& comm, const void* buf,
                                     std::int64_t count, DatatypePtr dt,
                                     int peer, int tag) {
    return PersistentRequest(comm, const_cast<void*>(buf), count,
                             std::move(dt), peer, tag, /*is_send=*/true);
  }
  static PersistentRequest recv_init(const Comm& comm, void* buf,
                                     std::int64_t count, DatatypePtr dt,
                                     int peer, int tag) {
    return PersistentRequest(comm, buf, count, std::move(dt), peer, tag,
                             /*is_send=*/false);
  }

  /// Begin one instance of the operation (MPI_Start). The previous
  /// instance must have completed.
  void start() {
    if (active_ && !active_->done)
      throw std::logic_error("PersistentRequest::start: still active");
    active_ = is_send_ ? comm_.isend(buf_, count_, dt_, peer_, tag_)
                       : comm_.irecv(buf_, count_, dt_, peer_, tag_);
  }

  void wait() {
    if (!active_)
      throw std::logic_error("PersistentRequest::wait: not started");
    comm_.wait(active_);
  }

  bool test() { return active_ ? comm_.test(active_) : false; }
  const Status& status() const { return active_->status; }

 private:
  PersistentRequest(const Comm& comm, void* buf, std::int64_t count,
                    DatatypePtr dt, int peer, int tag, bool is_send)
      : comm_(comm),
        buf_(buf),
        count_(count),
        dt_(std::move(dt)),
        peer_(peer),
        tag_(tag),
        is_send_(is_send) {}

  Comm comm_;
  void* buf_;
  std::int64_t count_;
  DatatypePtr dt_;
  int peer_;
  int tag_;
  bool is_send_;
  Request active_;
};

}  // namespace gpuddt::mpi
