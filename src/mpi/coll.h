// Datatype-aware collective operations.
//
// Classic algorithms built on the point-to-point layer, so every
// collective transparently benefits from the GPU datatype engine: device
// buffers and derived datatypes are first-class arguments everywhere
// (ScaLAPACK block-cyclic redistributions and FFT transposes are
// collective workloads in practice).
//
// Algorithms: binomial-tree bcast/reduce, linear gather/scatter, ring
// allgather, pairwise-exchange alltoall, reduce+bcast allreduce.
#pragma once

#include <cstdint>

#include "mpi/pml.h"

namespace gpuddt::mpi {

/// Reduction operators for reduce/allreduce.
enum class ReduceOp { kSum, kMax, kMin, kProd };

class Collectives {
 public:
  explicit Collectives(Comm comm) : comm_(comm) {}

  /// Broadcast `count` elements of `dt` at `buf` from `root` to all.
  void bcast(void* buf, std::int64_t count, const DatatypePtr& dt, int root);

  /// Gather each rank's `count` elements into `recvbuf` on `root`
  /// (rank i's contribution lands at element offset i*count).
  void gather(const void* sendbuf, void* recvbuf, std::int64_t count,
              const DatatypePtr& dt, int root);

  /// Inverse of gather.
  void scatter(const void* sendbuf, void* recvbuf, std::int64_t count,
               const DatatypePtr& dt, int root);

  /// Ring allgather: every rank ends with all contributions in rank order.
  void allgather(const void* sendbuf, void* recvbuf, std::int64_t count,
                 const DatatypePtr& dt);

  /// Pairwise-exchange alltoall: block j of `sendbuf` goes to rank j;
  /// block i of `recvbuf` comes from rank i. Blocks are `count` elements.
  void alltoall(const void* sendbuf, void* recvbuf, std::int64_t count,
                const DatatypePtr& dt);

  /// Element-wise reduction to `root`. Supported element types: kInt32,
  /// kInt64, kFloat, kDouble (dt must be one of those primitives or a
  /// contiguous/derived type over exactly one of them).
  void reduce(const void* sendbuf, void* recvbuf, std::int64_t count,
              const DatatypePtr& dt, ReduceOp op, int root);

  void allreduce(const void* sendbuf, void* recvbuf, std::int64_t count,
                 const DatatypePtr& dt, ReduceOp op);

  /// Dissemination barrier (same as Comm::barrier; here for completeness).
  void barrier() { comm_.barrier(); }

 private:
  /// Tag space reserved for collectives, keyed by a per-instance epoch so
  /// back-to-back collectives don't cross-match.
  int next_tag();

  Comm comm_;
  int epoch_ = 0;
};

}  // namespace gpuddt::mpi
