#include "mpi/runtime.h"

#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>

#include "check/access_tracker.h"
#include "mpi/bml.h"
#include "obs/recorder.h"
#include "mpi/btl.h"
#include "mpi/pml.h"
#include "mpi/sched.h"

namespace gpuddt::mpi {

// --- Process -----------------------------------------------------------------

Process::Process(Runtime& rt, int rank)
    : rt_(rt),
      rank_(rank),
      node_(rt.node_of(rank)),
      gpu_(rt.machine(), rt.device_of(rank)),
      pml_(std::make_unique<Pml>(*this)) {}

Process::~Process() = default;

int Process::size() const { return rt_.config().world_size; }

const RuntimeConfig& Process::config() const { return rt_.config(); }

int Process::node_of(int rank) const { return rt_.node_of(rank); }

vt::Time Process::am_send(int dst, int handler,
                          std::vector<std::byte> payload, vt::Time earliest) {
  return rt_.btl_between(rank_, dst)
      .am_send(*this, dst, handler, std::move(payload), earliest);
}

bool Process::progress() {
  bool any = false;
  for (;;) {
    AmMessage m;
    {
      std::lock_guard<std::mutex> lock(inbox_mu_);
      if (inbox_.empty()) break;
      m = std::move(inbox_.front());
      inbox_.pop_front();
    }
    // A rank cannot react to a message before its bytes have arrived.
    clock().wait_until(m.arrival);
    rt_.handler(m.handler)(*this, m);
    any = true;
  }
  // An empty poll is a scheduling point: iprobe/test spin loops must hand
  // the turn to the peers they are waiting on.
  if (!any) {
    if (auto* sched = rt_.scheduler()) sched->yield(rank_);
  }
  return any;
}

void Process::progress_blocking() {
  if (auto* sched = rt_.scheduler()) {
    for (;;) {
      if (progress()) return;
      sched->wait_for_message(rank_);
    }
  }
  if (progress()) return;
  const auto deadline =
      // det-lint: allow(wall_clock) - deadlock watchdog, not simulated time
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config().progress_timeout_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(inbox_mu_);
      if (inbox_.empty()) {
        if (inbox_cv_.wait_until(lock, deadline) ==
                std::cv_status::timeout &&
            inbox_.empty()) {
          throw std::runtime_error(
              "Process::progress_blocking: no traffic before timeout "
              "(likely deadlock) on rank " +
              std::to_string(rank_));
        }
      }
    }
    if (progress()) return;
  }
}

void Process::deliver(AmMessage&& m) {
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    inbox_.push_back(std::move(m));
  }
  inbox_cv_.notify_one();
  if (auto* sched = rt_.scheduler()) sched->note_message(rank_);
}

// --- Runtime ----------------------------------------------------------------------

Runtime::Runtime(RuntimeConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.world_size < 1)
    throw std::invalid_argument("Runtime: world_size must be >= 1");
  if (cfg_.ranks_per_node < 1)
    throw std::invalid_argument("Runtime: ranks_per_node must be >= 1");
  machine_ = std::make_unique<sg::Machine>(cfg_.machine);
  // Route access-checker counters (check.ops / check.hazards / ...) into
  // the runtime's recorder when both are present.
  check::set_recorder(*machine_, cfg_.recorder);
  bml_ = std::make_unique<Bml>(*this);
  Pml::register_handlers(*this);
  // Send ids and collective epochs restart with this Runtime, so the
  // latency engine must fence its flow-id space (obs/flowstats.h).
  if (cfg_.recorder != nullptr) cfg_.recorder->flowstats().begin_generation();
}

Runtime::~Runtime() {
  // Flows still open now (truncated run, receiver never completed) are
  // counted in flowstats.dropped, never folded into percentiles.
  if (cfg_.recorder != nullptr) cfg_.recorder->flowstats().end_generation();
}

int Runtime::register_handler(AmHandler h) {
  if (ran_)
    throw std::logic_error("Runtime: handlers must be registered before run");
  handlers_.push_back(std::move(h));
  return static_cast<int>(handlers_.size()) - 1;
}

void Runtime::set_gpu_plugin(std::shared_ptr<GpuTransferPlugin> plugin) {
  if (ran_) throw std::logic_error("Runtime: plugin must be set before run");
  plugin_ = std::move(plugin);
  if (plugin_) plugin_->attach(*this);
}

int Runtime::device_of(int rank) const {
  if (cfg_.device_of) return cfg_.device_of(rank);
  return rank % machine_->num_devices();
}

Btl& Runtime::btl_between(int a, int b) { return bml_->between(a, b); }

SchedBackend resolve_sched_backend(SchedBackend configured) {
  if (configured != SchedBackend::kAuto) return configured;
  if (const char* env = std::getenv("GPUDDT_SIM_BACKEND")) {
    const std::string v(env);
    if (v == "event" || v == "fiber") return SchedBackend::kEvent;
    if (v == "threads" || v == "thread") return SchedBackend::kThreads;
    if (!v.empty()) {
      throw std::invalid_argument(
          "GPUDDT_SIM_BACKEND must be 'event' or 'threads', got '" + v + "'");
    }
  }
  return SchedBackend::kEvent;
}

void Runtime::run(const std::function<void(Process&)>& fn) {
  if (ran_) throw std::logic_error("Runtime::run may only be called once");
  ran_ = true;
  procs_.clear();
  for (int r = 0; r < cfg_.world_size; ++r)
    procs_.push_back(std::make_unique<Process>(*this, r));

  if (!cfg_.deterministic) {
    run_threads(fn, /*cooperative=*/false);
    return;
  }
  if (resolve_sched_backend(cfg_.sched_backend) == SchedBackend::kThreads) {
    run_threads(fn, /*cooperative=*/true);
    return;
  }
  run_event_loop(fn);
}

// The default deterministic backend: every rank is a continuation of one
// event loop. Rank bodies reach the scheduler through the same
// Process::progress paths as the thread backend; only the suspension
// mechanism differs (a context switch instead of a condvar park).
void Runtime::run_event_loop(const std::function<void(Process&)>& fn) {
  vt::EventEngine engine(cfg_.world_size, {cfg_.sim_stack_bytes});
  engine.set_block_describer(
      [this](int r) { return procs_[static_cast<size_t>(r)]->pml().pending_summary(); });
  engine.set_clock_probe(
      [this](int r) { return procs_[static_cast<size_t>(r)]->clock().now(); });
  sched_ = &engine;
  try {
    engine.run([&](int r) { fn(*procs_[static_cast<size_t>(r)]); });
  } catch (...) {
    sim_stats_ = engine.stats();
    sched_ = nullptr;
    throw;
  }
  sim_stats_ = engine.stats();
  sched_ = nullptr;
}

// The legacy backends: one OS thread per rank, either cooperating through
// TurnScheduler (deterministic reference implementation) or free-running
// with the real-time deadlock watchdog.
void Runtime::run_threads(const std::function<void(Process&)>& fn,
                          bool cooperative) {
  std::unique_ptr<TurnScheduler> turn;
  if (cooperative) {
    turn = std::make_unique<TurnScheduler>(cfg_.world_size);
    turn->set_block_describer([this](int r) {
      return procs_[static_cast<size_t>(r)]->pml().pending_summary();
    });
    sched_ = turn.get();
  }

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(cfg_.world_size);
  threads.reserve(cfg_.world_size);
  for (int r = 0; r < cfg_.world_size; ++r) {
    threads.emplace_back([&, r] {
      try {
        if (turn) turn->start(r);
        fn(*procs_[r]);
      } catch (...) {
        errors[r] = std::current_exception();
      }
      // Leave the rotation even on exception, or the peers would wait for
      // this rank's turn forever.
      if (turn) turn->finish(r);
    });
  }
  for (auto& t : threads) t.join();
  sched_ = nullptr;
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace gpuddt::mpi
