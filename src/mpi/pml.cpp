#include "mpi/pml.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "mpi/btl.h"
#include "mpi/coll.h"
#include "obs/recorder.h"

namespace gpuddt::mpi {

namespace {

struct EagerHeader {
  Envelope env;
  std::int64_t bytes = 0;
};

template <typename H>
std::vector<std::byte> make_payload(const H& h, std::size_t extra = 0) {
  std::vector<std::byte> v(sizeof(H) + extra);
  std::memcpy(v.data(), &h, sizeof(H));
  return v;
}

template <typename H>
H read_header(const AmMessage& m) {
  if (m.payload.size() < sizeof(H))
    throw std::runtime_error("PML: truncated AM payload");
  H h;
  std::memcpy(&h, m.payload.data(), sizeof(H));
  return h;
}

bool matches(const RecvRequest& req, const Envelope& env) {
  return req.context == env.context &&
         (req.src == kAnySource || req.src == env.src) &&
         (req.tag == kAnyTag || req.tag == env.tag);
}

constexpr int kBarrierTagBase = 0x3fff0000;

}  // namespace

int Pml::h_eager_ = -1;
int Pml::h_rts_ = -1;
int Pml::h_cts_ = -1;
int Pml::h_frag_ = -1;
int Pml::h_fin_ = -1;

Pml::Pml(Process& p) : proc_(p), next_id_(1) {}
Pml::~Pml() = default;

void Pml::register_handlers(Runtime& rt) {
  h_eager_ = rt.register_handler(
      [](Process& p, AmMessage& m) { p.pml().on_eager(m); });
  h_rts_ =
      rt.register_handler([](Process& p, AmMessage& m) { p.pml().on_rts(m); });
  h_cts_ =
      rt.register_handler([](Process& p, AmMessage& m) { p.pml().on_cts(m); });
  h_frag_ = rt.register_handler(
      [](Process& p, AmMessage& m) { p.pml().on_frag(m); });
  h_fin_ =
      rt.register_handler([](Process& p, AmMessage& m) { p.pml().on_fin(m); });
}

void Pml::charge_cpu_pack(const PackStats& st) {
  const sg::CostModel& cm = proc_.runtime().machine().cost();
  proc_.clock().advance(
      cm.cpu_copy_ns(st.bytes) +
      static_cast<vt::Time>(cm.cpu_block_walk_ns *
                            static_cast<double>(st.pieces)));
}

SendRequest* Pml::find_send(std::uint64_t id) {
  auto it = sends_.find(id);
  return it == sends_.end() ? nullptr : it->second.get();
}

RecvRequest* Pml::find_recv(std::uint64_t id) {
  auto it = recvs_.find(id);
  return it == recvs_.end() ? nullptr : it->second.get();
}

void Pml::complete_send(SendRequest& req) {
  if (req.rts_sent > 0) {
    obs::observe(proc_.config().recorder, "pml.send.rendezvous_total_ns",
                 proc_.clock().now() - req.rts_sent);
  }
  req.user->done = true;
  sends_.erase(req.id);  // req dangles from here on
}

void Pml::complete_recv(RecvRequest& req) {
  // Every protocol (host fragments, eager delivery, all GPU plugin
  // modes) funnels receive completion through here, so this is where a
  // logical send flow closes for the latency engine. Eager messages
  // carry no flow id (peer_send_id 0): they are counted dropped, never
  // silently folded into percentiles.
  obs::Recorder* rec = proc_.config().recorder;
  if (rec != nullptr && rec->flowstats().enabled()) {
    if (req.peer_send_id != 0) {
      rec->flowstats().complete(
          {frag_flow(req.matched_env.src, req.peer_send_id, 0), "send",
           req.dt ? req.dt->shape_digest() : 0, req.total_bytes, -1, -1, 1});
    } else {
      rec->flowstats().drop_unidentified();
    }
  }
  req.user->done = true;
  req.user->status.source = req.matched_env.src;
  req.user->status.tag = req.matched_env.tag;
  req.user->status.bytes = req.total_bytes;
  recvs_.erase(req.id);  // req dangles from here on
}

namespace {

std::string wildcard(std::int32_t v) {
  return v < 0 ? std::string("any") : std::to_string(v);
}

}  // namespace

std::string Pml::pending_summary() const {
  // Deadlock reports are compared byte-exactly in tests, so walk the
  // request maps in id order, never in hash order.
  std::string out;
  const auto append = [&out](const std::string& item) {
    out += out.empty() ? item : ", " + item;
  };

  std::vector<std::uint64_t> ids;
  ids.reserve(recvs_.size());
  for (const auto& [id, req] : recvs_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const auto id : ids) {
    const RecvRequest& r = *recvs_.at(id);
    if (r.matched) {
      append("recv(src=" + std::to_string(r.matched_env.src) +
             ", tag=" + std::to_string(r.matched_env.tag) +
             ", ctx=" + std::to_string(r.matched_env.context) +
             ", in transfer)");
    } else {
      append("recv(src=" + wildcard(r.src) + ", tag=" + wildcard(r.tag) +
             ", ctx=" + std::to_string(r.context) + ")");
    }
  }

  ids.clear();
  ids.reserve(sends_.size());
  for (const auto& [id, req] : sends_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const auto id : ids) {
    const SendRequest& s = *sends_.at(id);
    append("send(dst=" + std::to_string(s.env.dst) +
           ", tag=" + std::to_string(s.env.tag) +
           ", ctx=" + std::to_string(s.env.context) +
           ", bytes=" + std::to_string(s.total_bytes) + ")");
  }

  if (out.empty()) {
    out = "no pending point-to-point ops";
  }
  return out;
}

// --- Send ------------------------------------------------------------------------

Request Pml::isend(const void* buf, std::int64_t count, const DatatypePtr& dt,
                   int dst, int tag, int context) {
  auto req = std::make_unique<SendRequest>();
  req->id = next_id_++;
  req->env = Envelope{context, proc_.rank(), dst, tag};
  req->buf = buf;
  req->dt = dt;
  req->count = count;
  req->total_bytes = dt->size() * count;
  req->space = proc_.runtime().machine().query(buf);
  req->user = std::make_shared<RequestState>();
  Request user = req->user;
  SendRequest& r = *req;
  sends_.emplace(r.id, std::move(req));

  if (r.space.space == sg::MemorySpace::kDevice) {
    GpuTransferPlugin* plugin = proc_.runtime().gpu_plugin();
    if (plugin == nullptr)
      throw std::runtime_error(
          "PML: device buffer send but no GPU transfer plugin installed");
    plugin->send_start(proc_, r);
    return user;
  }

  if (static_cast<std::size_t>(r.total_bytes) <=
      proc_.config().eager_limit) {
    // Eager: pack inline and fire one AM; the send is complete.
    EagerHeader h{r.env, r.total_bytes};
    auto payload = make_payload(h, static_cast<std::size_t>(r.total_bytes));
    const PackStats st = cpu_pack(
        r.dt, r.count, r.buf,
        std::span<std::byte>(payload.data() + sizeof(EagerHeader),
                             static_cast<std::size_t>(r.total_bytes)));
    charge_cpu_pack(st);
    proc_.am_send(r.env.dst, h_eager_, std::move(payload));
    obs::count(proc_.config().recorder, "pml.sends.eager");
    obs::count(proc_.config().recorder, "pml.eager.bytes", r.total_bytes);
    complete_send(r);
    return user;
  }

  start_host_rendezvous_send(r);
  return user;
}

vt::Time Pml::send_packed_eager(const Envelope& env,
                                std::span<const std::byte> packed,
                                vt::Time earliest) {
  EagerHeader h{env, static_cast<std::int64_t>(packed.size())};
  auto payload = make_payload(h, packed.size());
  std::memcpy(payload.data() + sizeof(EagerHeader), packed.data(),
              packed.size());
  return proc_.am_send(env.dst, h_eager_, std::move(payload), earliest);
}

void Pml::start_host_rendezvous_send(SendRequest& req) {
  RtsHeader rts;
  rts.env = req.env;
  rts.send_id = req.id;
  rts.total_bytes = req.total_bytes;
  rts.src_is_device = 0;
  rts.src_contiguous = req.dt->is_contiguous(req.count) ? 1 : 0;
  rts.src_node = proc_.node();
  rts.sig_hash = req.dt->signature().hash();
  req.cursor = BlockCursor(req.dt, req.count);
  proc_.am_send(req.env.dst, h_rts_, make_payload(rts));
  req.rts_sent = proc_.clock().now();
  obs::count(proc_.config().recorder, "pml.sends.rendezvous");
}

void Pml::stream_host_frags(SendRequest& req, const CtsHeader& cts) {
  const std::size_t max_payload =
      proc_.runtime().btl_between(proc_.rank(), req.env.dst).max_am_payload();
  std::size_t frag = cts.frag_bytes > 0
                         ? static_cast<std::size_t>(cts.frag_bytes)
                         : proc_.config().frag_bytes;
  frag = std::min(frag, max_payload - sizeof(FragHeader));
  std::int64_t offset = 0;
  while (offset < req.total_bytes) {
    const std::int64_t n = std::min<std::int64_t>(
        static_cast<std::int64_t>(frag), req.total_bytes - offset);
    FragHeader h;
    h.recv_id = cts.recv_id;
    h.offset = offset;
    h.bytes = n;
    h.last = (offset + n == req.total_bytes) ? 1 : 0;
    auto payload = make_payload(h, static_cast<std::size_t>(n));
    const PackStats st = cpu_pack_some(
        req.cursor, req.buf,
        std::span<std::byte>(payload.data() + sizeof(FragHeader),
                             static_cast<std::size_t>(n)));
    if (st.bytes != n)
      throw std::runtime_error("PML: datatype shorter than advertised");
    charge_cpu_pack(st);
    proc_.am_send(req.env.dst, h_frag_, std::move(payload));
    offset += n;
  }
  complete_send(req);
}

// --- Receive ------------------------------------------------------------------------

Request Pml::irecv(void* buf, std::int64_t count, const DatatypePtr& dt,
                   int src, int tag, int context) {
  auto req = std::make_unique<RecvRequest>();
  req->id = next_id_++;
  req->context = context;
  req->src = src;
  req->tag = tag;
  req->buf = buf;
  req->dt = dt;
  req->count = count;
  req->total_bytes = dt->size() * count;
  req->space = proc_.runtime().machine().query(buf);
  req->user = std::make_shared<RequestState>();
  Request user = req->user;
  RecvRequest& r = *req;
  recvs_.emplace(r.id, std::move(req));

  // Try the unexpected queue first, in arrival order.
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (!matches(r, it->env)) continue;
    Unexpected u = std::move(*it);
    unexpected_.erase(it);
    r.matched = true;
    r.matched_env = u.env;
    if (u.is_rts) {
      handle_matched_rts(r, u.rts, u.arrival);
    } else {
      deliver_eager_to_recv(r, u);
    }
    return user;
  }
  posted_.push_back(&r);
  return user;
}

void Pml::deliver_eager_to_recv(RecvRequest& req, const Unexpected& u) {
  if (static_cast<std::int64_t>(u.eager_data.size()) > req.total_bytes)
    throw std::runtime_error("PML: eager message longer than recv buffer");
  proc_.clock().wait_until(u.arrival);
  if (req.space.space == sg::MemorySpace::kDevice) {
    GpuTransferPlugin* plugin = proc_.runtime().gpu_plugin();
    if (plugin == nullptr)
      throw std::runtime_error("PML: device recv without GPU plugin");
    plugin->recv_eager(proc_, req, u.eager_data, u.arrival);
    return;  // plugin completes the request
  }
  // The message may legally be shorter than the posted receive.
  BlockCursor cur(req.dt, req.count);
  const PackStats st = cpu_unpack_some(cur, u.eager_data, req.buf);
  charge_cpu_pack(st);
  req.total_bytes = static_cast<std::int64_t>(u.eager_data.size());
  complete_recv(req);
}

void Pml::handle_matched_rts(RecvRequest& req, const RtsHeader& rts,
                             vt::Time arrival) {
  if (rts.total_bytes > req.total_bytes)
    throw std::runtime_error("PML: rendezvous message longer than recv");
  req.matched = true;
  req.matched_env = rts.env;
  req.peer_send_id = rts.send_id;  // seeds frag_flow on arriving fragments
  if (rts.src_is_device || req.space.space == sg::MemorySpace::kDevice) {
    GpuTransferPlugin* plugin = proc_.runtime().gpu_plugin();
    if (plugin == nullptr)
      throw std::runtime_error("PML: GPU transfer without GPU plugin");
    plugin->recv_start(proc_, req, rts, arrival);
    return;
  }
  // Plain host rendezvous: stream fragments to me.
  req.cursor = BlockCursor(req.dt, req.count);
  req.total_bytes = rts.total_bytes;
  CtsHeader cts;
  cts.send_id = rts.send_id;
  cts.recv_id = req.id;
  cts.mode = TransferMode::kHostFrags;
  cts.frag_bytes = static_cast<std::int64_t>(proc_.config().frag_bytes);
  proc_.am_send(rts.env.src, h_cts_, make_payload(cts));
  req.cts_sent = proc_.clock().now();
}

bool Pml::try_match_posted(const Envelope& env, RecvRequest** out) {
  for (auto it = posted_.begin(); it != posted_.end(); ++it) {
    if (matches(**it, env)) {
      *out = *it;
      posted_.erase(it);
      return true;
    }
  }
  return false;
}

// --- AM handlers ----------------------------------------------------------------------

void Pml::on_eager(AmMessage& m) {
  const EagerHeader h = read_header<EagerHeader>(m);
  RecvRequest* req = nullptr;
  if (try_match_posted(h.env, &req)) {
    req->matched = true;
    req->matched_env = h.env;
    Unexpected u;
    u.env = h.env;
    u.arrival = m.arrival;
    u.eager_data.assign(m.payload.begin() + sizeof(EagerHeader),
                        m.payload.end());
    deliver_eager_to_recv(*req, u);
    return;
  }
  Unexpected u;
  u.env = h.env;
  u.is_rts = false;
  u.arrival = m.arrival;
  u.eager_data.assign(m.payload.begin() + sizeof(EagerHeader),
                      m.payload.end());
  unexpected_.push_back(std::move(u));
}

void Pml::on_rts(AmMessage& m) {
  const RtsHeader rts = read_header<RtsHeader>(m);
  RecvRequest* req = nullptr;
  if (try_match_posted(rts.env, &req)) {
    req->matched = true;
    req->matched_env = rts.env;
    handle_matched_rts(*req, rts, m.arrival);
    return;
  }
  Unexpected u;
  u.env = rts.env;
  u.is_rts = true;
  u.rts = rts;
  u.arrival = m.arrival;
  unexpected_.push_back(std::move(u));
}

void Pml::on_cts(AmMessage& m) {
  const CtsHeader cts = read_header<CtsHeader>(m);
  SendRequest* req = find_send(cts.send_id);
  if (req == nullptr)
    throw std::runtime_error("PML: CTS for unknown send request");
  // RTS -> CTS handshake latency, recorded for every rendezvous flavour
  // (host- and device-resident sources) before protocol dispatch.
  if (req->rts_sent > 0) {
    obs::observe(proc_.config().recorder, "pml.rts_to_cts_ns",
                 m.arrival - req->rts_sent);
  }
  if (req->space.space == sg::MemorySpace::kDevice) {
    proc_.runtime().gpu_plugin()->send_on_cts(proc_, *req, cts, m.arrival);
    return;
  }
  if (cts.mode != TransferMode::kHostFrags)
    throw std::runtime_error("PML: RDMA mode requested from a host sender");
  stream_host_frags(*req, cts);
}

void Pml::on_frag(AmMessage& m) {
  const FragHeader h = read_header<FragHeader>(m);
  RecvRequest* req = find_recv(h.recv_id);
  if (req == nullptr)
    throw std::runtime_error("PML: fragment for unknown recv request");
  std::span<const std::byte> data(m.payload.data() + sizeof(FragHeader),
                                  static_cast<std::size_t>(h.bytes));
  // Fragments of one send arrive in order, so the arrival index equals
  // the sender's fragment index and both sides compute the same flow id
  // without any extra wire bytes (frag_flow, pml.h).
  req->last_flow = frag_flow(m.src_rank, req->peer_send_id,
                             req->frags_seen++);
  // Per-fragment rendezvous latencies, for host and device destinations
  // alike (the plugin path below shares this bookkeeping).
  {
    obs::Recorder* rec = proc_.config().recorder;
    obs::count(rec, "pml.frags");
    obs::count(rec, "pml.frag.bytes", h.bytes);
    if (req->first_frag_arrival == 0) {
      req->first_frag_arrival = m.arrival;
      if (req->cts_sent > 0)
        obs::observe(rec, "pml.cts_to_first_frag_ns",
                     m.arrival - req->cts_sent);
    } else if (m.arrival >= req->last_frag_arrival) {
      obs::observe(rec, "pml.frag_gap_ns",
                   m.arrival - req->last_frag_arrival);
    }
    req->last_frag_arrival = m.arrival;
    obs::trace(rec, {"frag", "pml", m.arrival, m.arrival, proc_.rank(),
                     h.bytes, proc_.rank(), req->last_flow});
  }
  if (req->space.space == sg::MemorySpace::kDevice) {
    proc_.runtime().gpu_plugin()->recv_on_frag(proc_, *req, h, data,
                                               m.arrival);
    return;
  }
  if (h.offset != req->bytes_received)
    throw std::runtime_error("PML: out-of-order fragment");
  const PackStats st = cpu_unpack_some(req->cursor, data, req->buf);
  charge_cpu_pack(st);
  req->bytes_received += st.bytes;
  if (h.last) {
    if (req->bytes_received != req->total_bytes &&
        req->bytes_received != req->cursor.bytes_consumed())
      throw std::runtime_error("PML: fragment stream size mismatch");
    req->total_bytes = req->bytes_received;
    if (req->cts_sent > 0)
      obs::observe(proc_.config().recorder, "pml.cts_to_last_frag_ns",
                   m.arrival - req->cts_sent);
    complete_recv(*req);
  }
}

void Pml::on_fin(AmMessage& m) {
  // The PML-level fin completes whichever side was waiting passively
  // (used by the RDMA shortcut modes of Section 4.1).
  const FinHeader f = read_header<FinHeader>(m);
  if (f.to_sender) {
    SendRequest* req = find_send(f.req_id);
    if (req == nullptr) throw std::runtime_error("PML: fin for unknown send");
    if (req->rts_sent > 0)
      obs::observe(proc_.config().recorder, "pml.rts_to_fin_ns",
                   m.arrival - req->rts_sent);
    complete_send(*req);
  } else {
    RecvRequest* req = find_recv(f.req_id);
    if (req == nullptr) throw std::runtime_error("PML: fin for unknown recv");
    if (req->cts_sent > 0)
      obs::observe(proc_.config().recorder, "pml.cts_to_fin_ns",
                   m.arrival - req->cts_sent);
    // Plugin-owned recvs (stream-triggered chains) finalize their engine
    // op and free staging here, on the receiver's own thread: this fin is
    // the first host wakeup the transfer caused on this rank.
    if (req->plugin && proc_.runtime().gpu_plugin() != nullptr)
      proc_.runtime().gpu_plugin()->recv_fin(proc_, *req, m.arrival);
    complete_recv(*req);
  }
}

// --- Wait -------------------------------------------------------------------------------

namespace {
/// Sub-communicator receives carry a group map: translate the completed
/// status's world-rank source into the communicator's numbering once.
void finalize_status(const Request& r) {
  if (r->done && r->group && r->status.source >= 0) {
    const auto& g = *r->group;
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (g[i] == r->status.source) {
        r->status.source = static_cast<int>(i);
        break;
      }
    }
    r->group.reset();
  }
}
}  // namespace

void Pml::wait(const Request& r) {
  while (!r->done) proc_.progress_blocking();
  finalize_status(r);
}

void Pml::waitall(std::span<Request> rs) {
  for (const auto& r : rs) wait(r);
}

bool Pml::iprobe(int src, int tag, int context, Status* st) {
  proc_.progress();
  for (const Unexpected& u : unexpected_) {
    if (u.env.context != context) continue;
    if (src != kAnySource && u.env.src != src) continue;
    if (tag != kAnyTag && u.env.tag != tag) continue;
    if (st != nullptr) {
      st->source = u.env.src;
      st->tag = u.env.tag;
      st->bytes = u.is_rts ? u.rts.total_bytes
                           : static_cast<std::int64_t>(u.eager_data.size());
    }
    return true;
  }
  return false;
}

std::size_t Pml::waitany(std::span<const Request> rs) {
  if (rs.empty()) throw std::invalid_argument("waitany: empty request set");
  for (;;) {
    for (std::size_t i = 0; i < rs.size(); ++i) {
      if (rs[i]->done) {
        finalize_status(rs[i]);
        return i;
      }
    }
    proc_.progress_blocking();
  }
}

bool Pml::test(const Request& r) {
  if (!r->done) proc_.progress();
  if (r->done) finalize_status(r);
  return r->done;
}

// --- Comm --------------------------------------------------------------------------------

Comm Comm::split(int color, int key) const {
  struct Item {
    std::int32_t color;
    std::int32_t key;
    std::int32_t world;
  };
  const int n = size();
  std::vector<Item> all(static_cast<std::size_t>(n));
  Item mine{color, key, static_cast<std::int32_t>(p_->rank())};
  Collectives coll(*this);
  coll.allgather(&mine, all.data(), static_cast<std::int64_t>(sizeof(Item)),
                 kByte());
  // Distinct colors, sorted, give each split a deterministic context.
  std::vector<std::int32_t> colors;
  for (const auto& it : all) colors.push_back(it.color);
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  const auto cit = std::find(colors.begin(), colors.end(), color);
  const int color_index = static_cast<int>(cit - colors.begin());
  const int new_context =
      ((context_ * 131 + color_index + 1) & 0x0fffffff) + 1;

  // My color's members, ordered by (key, old world rank).
  std::vector<Item> members;
  for (const auto& it : all)
    if (it.color == color) members.push_back(it);
  std::sort(members.begin(), members.end(), [](const Item& a, const Item& b) {
    return a.key != b.key ? a.key < b.key : a.world < b.world;
  });
  auto group = std::make_shared<std::vector<int>>();
  int my_rank = -1;
  for (const auto& it : members) {
    if (it.world == p_->rank()) my_rank = static_cast<int>(group->size());
    group->push_back(it.world);
  }
  return Comm(*p_, new_context, std::move(group), my_rank);
}

void Comm::barrier() const {
  const int size = this->size();
  const int rank = this->rank();
  char token = 0;
  int step = 0;
  for (int dist = 1; dist < size; dist <<= 1, ++step) {
    const int to = (rank + dist) % size;
    const int from = (rank - dist % size + size) % size;
    Request rr = irecv(&token, 0, kByte(), from, kBarrierTagBase + step);
    Request sr = isend(&token, 0, kByte(), to, kBarrierTagBase + step);
    p_->pml().wait(rr);
    p_->pml().wait(sr);
  }
}

}  // namespace gpuddt::mpi
