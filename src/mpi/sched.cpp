#include "mpi/sched.h"

#include <stdexcept>
#include <string>

namespace gpuddt::mpi {

TurnScheduler::TurnScheduler(int nranks)
    : state_(static_cast<size_t>(nranks), State::kRunnable),
      pending_(static_cast<size_t>(nranks), false) {}

void TurnScheduler::start(int rank) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return active_ == rank || deadlock_; });
  if (deadlock_) throw_deadlock(rank);
}

void TurnScheduler::finish(int rank) {
  std::unique_lock<std::mutex> lk(mu_);
  state_[rank] = State::kFinished;
  if (active_ == rank) pass_turn_locked(rank);
}

void TurnScheduler::wait_for_message(int rank) {
  std::unique_lock<std::mutex> lk(mu_);
  if (pending_[rank]) {
    pending_[rank] = false;
    return;
  }
  state_[rank] = State::kBlocked;
  pass_turn_locked(rank);
  cv_.wait(lk, [&] {
    return (active_ == rank && state_[rank] == State::kRunnable) || deadlock_;
  });
  if (deadlock_) throw_deadlock(rank);
  pending_[rank] = false;
}

void TurnScheduler::yield(int rank) {
  std::unique_lock<std::mutex> lk(mu_);
  pass_turn_locked(rank);
  if (active_ == rank) return;  // nobody else runnable
  cv_.wait(lk, [&] { return active_ == rank || deadlock_; });
  if (deadlock_) throw_deadlock(rank);
}

void TurnScheduler::note_message(int dst) {
  std::lock_guard<std::mutex> lk(mu_);
  pending_[dst] = true;
  if (state_[dst] == State::kBlocked) state_[dst] = State::kRunnable;
}

void TurnScheduler::pass_turn_locked(int from) {
  const int n = static_cast<int>(state_.size());
  for (int i = 1; i <= n; ++i) {
    const int r = (from + i) % n;
    if (state_[r] == State::kRunnable) {
      active_ = r;
      cv_.notify_all();
      return;
    }
  }
  // No runnable rank. If blocked ranks remain, nobody can ever wake them.
  for (int r = 0; r < n; ++r) {
    if (state_[r] == State::kBlocked) {
      deadlock_ = true;
      cv_.notify_all();
      return;
    }
  }
  // Everyone finished; nothing to do.
}

void TurnScheduler::throw_deadlock(int rank) const {
  throw std::runtime_error(
      "TurnScheduler: deadlock - rank " + std::to_string(rank) +
      " is waiting for messages but every remaining rank is blocked or "
      "finished");
}

}  // namespace gpuddt::mpi
