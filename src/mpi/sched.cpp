#include "mpi/sched.h"

#include <stdexcept>
#include <string>

namespace gpuddt::mpi {

TurnScheduler::TurnScheduler(int nranks)
    : state_(static_cast<size_t>(nranks), State::kRunnable),
      pending_(static_cast<size_t>(nranks), false) {}

void TurnScheduler::set_block_describer(vt::BlockDescriber d) {
  describer_ = std::move(d);
}

void TurnScheduler::start(int rank) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return active_ == rank || deadlock_; });
  if (deadlock_) throw_deadlock();
}

void TurnScheduler::finish(int rank) {
  std::unique_lock<std::mutex> lk(mu_);
  state_[rank] = State::kFinished;
  if (active_ == rank) pass_turn_locked(rank);
}

void TurnScheduler::wait_for_message(int rank) {
  std::unique_lock<std::mutex> lk(mu_);
  if (pending_[rank]) {
    pending_[rank] = false;
    return;
  }
  state_[rank] = State::kBlocked;
  pass_turn_locked(rank);
  cv_.wait(lk, [&] {
    return (active_ == rank && state_[rank] == State::kRunnable) || deadlock_;
  });
  if (deadlock_) throw_deadlock();
  pending_[rank] = false;
}

void TurnScheduler::yield(int rank) {
  std::unique_lock<std::mutex> lk(mu_);
  pass_turn_locked(rank);
  if (active_ == rank) return;  // nobody else runnable
  cv_.wait(lk, [&] { return active_ == rank || deadlock_; });
  if (deadlock_) throw_deadlock();
}

void TurnScheduler::note_message(int dst) {
  std::lock_guard<std::mutex> lk(mu_);
  pending_[dst] = true;
  if (state_[dst] == State::kBlocked) state_[dst] = State::kRunnable;
}

void TurnScheduler::pass_turn_locked(int from) {
  const int n = static_cast<int>(state_.size());
  for (int i = 1; i <= n; ++i) {
    const int r = (from + i) % n;
    if (state_[r] == State::kRunnable) {
      active_ = r;
      cv_.notify_all();
      return;
    }
  }
  // No runnable rank. If blocked ranks remain, nobody can ever wake them.
  // The detecting thread is the only one executing (all blocked peers are
  // parked on cv_), so the describer may safely read cross-rank protocol
  // state while we compose the report.
  for (int r = 0; r < n; ++r) {
    if (state_[r] == State::kBlocked) {
      // Compose once, at first detection: the detecting rank unwinds
      // through finish() afterwards (already kFinished), so recomposing
      // would drop its pending op from every other rank's report.
      if (!deadlock_) {
        deadlock_report_ = vt::compose_deadlock_report(
            n, [this](int t) { return state_[t] == State::kBlocked; },
            describer_);
        deadlock_ = true;
      }
      cv_.notify_all();
      return;
    }
  }
  // Everyone finished; nothing to do.
}

void TurnScheduler::throw_deadlock() const {
  throw vt::DeadlockError(deadlock_report_);
}

}  // namespace gpuddt::mpi
