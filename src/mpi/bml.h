// BTL Management Layer (BML).
//
// The middle layer of Open MPI's communication stack: owns the BTL
// instances, selects the best one per peer pair (shared memory within a
// node, InfiniBand across nodes), and manages multi-link ("multi-rail")
// transfers - consecutive large messages round-robin across the available
// IB rails, so a pipelined fragment stream aggregates the bandwidth of
// every rail.
#pragma once

#include <memory>

#include "mpi/btl.h"

namespace gpuddt::mpi {

class Bml {
 public:
  explicit Bml(Runtime& rt);
  ~Bml();

  /// The BTL serving traffic between two ranks.
  Btl& between(int rank_a, int rank_b);

  Btl& sm() { return *sm_btl_; }
  Btl& ib() { return *ib_btl_; }

 private:
  Runtime& rt_;
  std::unique_ptr<Btl> sm_btl_;
  std::unique_ptr<Btl> ib_btl_;
};

}  // namespace gpuddt::mpi
