#include "mpi/coll.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/recorder.h"

namespace gpuddt::mpi {

namespace {

constexpr int kCollTagBase = 0x2fff0000;

/// Per-call observability for one collective on one rank: counters
/// (docs/metrics.md `coll.*` family) plus one trace span covering the
/// whole call. `sent()` tallies bytes this rank injects into the
/// transport, split packed/contiguous by the datatype's layout and
/// staged/direct by whether the algorithm bounces the payload through a
/// host staging copy (the packed-stream reduce path) or hands user
/// buffers straight to the point-to-point layer. The destructor emits,
/// so early returns (leaf ranks) are covered.
class CollSpan {
 public:
  CollSpan(Comm& comm, const char* op, std::uint64_t flow = 0,
           std::uint64_t shape = 0)
      : comm_(comm),
        rec_(comm.process().config().recorder),
        op_(op),
        flow_(flow),
        shape_(shape),
        begin_(comm.process().clock().now()) {}

  void sent(std::int64_t bytes, bool contiguous, bool staged) {
    bytes_ += bytes;
    (contiguous ? contiguous_ : packed_) += bytes;
    (staged ? staged_ : direct_) += bytes;
  }

  /// One reduction-operator application per element (docs/metrics.md
  /// `coll.<op>.op_flops`): a combining step over n elements is n FLOPs.
  void ops(std::int64_t elems) { flops_ += elems; }

  ~CollSpan() {
    if (rec_ == nullptr) return;
    const std::string prefix = std::string("coll.") + op_;
    obs::count(rec_, prefix + ".calls");
    obs::count(rec_, prefix + ".bytes", bytes_);
    if (flops_ > 0) obs::count(rec_, prefix + ".op_flops", flops_);
    if (packed_ > 0) obs::count(rec_, "coll.bytes.packed", packed_);
    if (contiguous_ > 0)
      obs::count(rec_, "coll.bytes.contiguous", contiguous_);
    if (staged_ > 0) obs::count(rec_, "coll.bytes.staged", staged_);
    if (direct_ > 0) obs::count(rec_, "coll.bytes.direct", direct_);
    const std::int64_t end = comm_.process().clock().now();
    obs::trace(rec_, {op_, "coll", begin_, end, comm_.rank(), bytes_,
                      comm_.rank(), flow_});
    // Every member rank emits one completion against the shared
    // coll_flow id; the latency engine finalizes the flow when all
    // comm.size() participants have reported, spanning the earliest
    // begin to the latest end (obs/flowstats.h).
    if (flow_ != 0 && rec_->flowstats().enabled()) {
      rec_->flowstats().complete({flow_, std::string("coll.") + op_, shape_,
                                  bytes_, begin_, end, comm_.size()});
    }
  }

  CollSpan(const CollSpan&) = delete;
  CollSpan& operator=(const CollSpan&) = delete;

 private:
  Comm& comm_;
  obs::Recorder* rec_;
  const char* op_;
  std::uint64_t flow_ = 0;
  std::uint64_t shape_ = 0;
  std::int64_t begin_;
  std::int64_t bytes_ = 0;
  std::int64_t flops_ = 0;
  std::int64_t packed_ = 0;
  std::int64_t contiguous_ = 0;
  std::int64_t staged_ = 0;
  std::int64_t direct_ = 0;
};

/// Element offset -> byte offset for block placement.
std::int64_t block_off(const DatatypePtr& dt, std::int64_t elems) {
  return elems * dt->extent();
}

Primitive reduce_primitive(const DatatypePtr& dt) {
  const Signature& sig = dt->signature();
  if (sig.runs.size() != 1 || sig.overflow_hash != 0)
    throw std::invalid_argument(
        "reduce: datatype must be over a single primitive type");
  const Primitive p = sig.runs[0].prim;
  switch (p) {
    case Primitive::kInt32:
    case Primitive::kInt64:
    case Primitive::kFloat:
    case Primitive::kDouble:
      return p;
    default:
      throw std::invalid_argument("reduce: unsupported primitive");
  }
}

std::int64_t prim_bytes(Primitive p) {
  return (p == Primitive::kInt32 || p == Primitive::kFloat) ? 4 : 8;
}

template <typename T>
void apply_typed(ReduceOp op, T* acc, const T* in, std::int64_t n) {
  switch (op) {
    case ReduceOp::kSum:
      for (std::int64_t i = 0; i < n; ++i) acc[i] += in[i];
      break;
    case ReduceOp::kProd:
      for (std::int64_t i = 0; i < n; ++i) acc[i] *= in[i];
      break;
    case ReduceOp::kMax:
      for (std::int64_t i = 0; i < n; ++i) acc[i] = std::max(acc[i], in[i]);
      break;
    case ReduceOp::kMin:
      for (std::int64_t i = 0; i < n; ++i) acc[i] = std::min(acc[i], in[i]);
      break;
  }
}

void apply_op(ReduceOp op, Primitive p, std::byte* acc, const std::byte* in,
              std::int64_t bytes) {
  switch (p) {
    case Primitive::kInt32:
      apply_typed(op, reinterpret_cast<std::int32_t*>(acc),
                  reinterpret_cast<const std::int32_t*>(in), bytes / 4);
      break;
    case Primitive::kInt64:
      apply_typed(op, reinterpret_cast<std::int64_t*>(acc),
                  reinterpret_cast<const std::int64_t*>(in), bytes / 8);
      break;
    case Primitive::kFloat:
      apply_typed(op, reinterpret_cast<float*>(acc),
                  reinterpret_cast<const float*>(in), bytes / 4);
      break;
    case Primitive::kDouble:
      apply_typed(op, reinterpret_cast<double*>(acc),
                  reinterpret_cast<const double*>(in), bytes / 8);
      break;
    default:
      throw std::invalid_argument("reduce: unsupported primitive");
  }
}

}  // namespace

int Collectives::next_tag() {
  epoch_ = (epoch_ + 1) & 0xfff;
  return kCollTagBase + epoch_;
}

void Collectives::bcast(void* buf, std::int64_t count, const DatatypePtr& dt,
                        int root) {
  const int size = comm_.size();
  const int rank = comm_.rank();
  const int tag = next_tag();
  if (size == 1 || count == 0 || dt->size() == 0) return;
  CollSpan span(comm_, "bcast", coll_flow(comm_.context(), epoch_),
                dt->shape_digest());
  const std::int64_t block = dt->size() * count;
  const bool contig = dt->is_contiguous(count);
  const int vrank = (rank - root + size) % size;
  // Binomial tree: receive from the parent, then forward to children.
  int mask = 1;
  while (mask < size) {
    if (vrank & mask) {
      const int parent = (vrank - mask + root) % size;
      comm_.recv(buf, count, dt, parent, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < size) {
      const int child = (vrank + mask + root) % size;
      comm_.send(buf, count, dt, child, tag);
      span.sent(block, contig, /*staged=*/false);
    }
    mask >>= 1;
  }
}

void Collectives::gather(const void* sendbuf, void* recvbuf,
                         std::int64_t count, const DatatypePtr& dt,
                         int root) {
  const int size = comm_.size();
  const int rank = comm_.rank();
  const int tag = next_tag();
  CollSpan span(comm_, "gather", coll_flow(comm_.context(), epoch_),
                dt->shape_digest());
  const std::int64_t block = dt->size() * count;
  const bool contig = dt->is_contiguous(count);
  if (rank != root) {
    comm_.send(sendbuf, count, dt, root, tag);
    span.sent(block, contig, /*staged=*/false);
    return;
  }
  auto* out = static_cast<std::byte*>(recvbuf);
  std::vector<Request> reqs;
  for (int r = 0; r < size; ++r) {
    if (r == rank) continue;
    reqs.push_back(
        comm_.irecv(out + block_off(dt, r * count), count, dt, r, tag));
  }
  // Own block: loop it through the transport so device buffers and
  // non-contiguous layouts are handled uniformly.
  reqs.push_back(comm_.isend(sendbuf, count, dt, rank, tag));
  span.sent(block, contig, /*staged=*/false);
  reqs.push_back(
      comm_.irecv(out + block_off(dt, rank * count), count, dt, rank, tag));
  comm_.waitall(reqs);
}

void Collectives::scatter(const void* sendbuf, void* recvbuf,
                          std::int64_t count, const DatatypePtr& dt,
                          int root) {
  const int size = comm_.size();
  const int rank = comm_.rank();
  const int tag = next_tag();
  CollSpan span(comm_, "scatter", coll_flow(comm_.context(), epoch_),
                dt->shape_digest());
  const std::int64_t block = dt->size() * count;
  const bool contig = dt->is_contiguous(count);
  if (rank != root) {
    comm_.recv(recvbuf, count, dt, root, tag);
    return;
  }
  const auto* in = static_cast<const std::byte*>(sendbuf);
  std::vector<Request> reqs;
  for (int r = 0; r < size; ++r) {
    if (r == rank) continue;
    reqs.push_back(
        comm_.isend(in + block_off(dt, r * count), count, dt, r, tag));
    span.sent(block, contig, /*staged=*/false);
  }
  reqs.push_back(
      comm_.isend(in + block_off(dt, rank * count), count, dt, rank, tag));
  span.sent(block, contig, /*staged=*/false);
  reqs.push_back(comm_.irecv(recvbuf, count, dt, rank, tag));
  comm_.waitall(reqs);
}

void Collectives::allgather(const void* sendbuf, void* recvbuf,
                            std::int64_t count, const DatatypePtr& dt) {
  const int size = comm_.size();
  const int rank = comm_.rank();
  const int tag = next_tag();
  CollSpan span(comm_, "allgather", coll_flow(comm_.context(), epoch_),
                dt->shape_digest());
  const std::int64_t block = dt->size() * count;
  const bool contig = dt->is_contiguous(count);
  auto* out = static_cast<std::byte*>(recvbuf);
  // Place the local contribution (via the transport: uniform handling).
  {
    Request s = comm_.isend(sendbuf, count, dt, rank, tag);
    span.sent(block, contig, /*staged=*/false);
    Request r =
        comm_.irecv(out + block_off(dt, rank * count), count, dt, rank, tag);
    comm_.wait(s);
    comm_.wait(r);
  }
  // Ring: in step s, forward the block received in step s-1.
  const int right = (rank + 1) % size;
  const int left = (rank - 1 + size) % size;
  for (int step = 0; step < size - 1; ++step) {
    const int send_block = (rank - step + size) % size;
    const int recv_block = (rank - step - 1 + size) % size;
    Request r = comm_.irecv(out + block_off(dt, recv_block * count), count,
                            dt, left, tag + 0x1000 + step);
    Request s = comm_.isend(out + block_off(dt, send_block * count), count,
                            dt, right, tag + 0x1000 + step);
    span.sent(block, contig, /*staged=*/false);
    comm_.wait(r);
    comm_.wait(s);
  }
}

void Collectives::alltoall(const void* sendbuf, void* recvbuf,
                           std::int64_t count, const DatatypePtr& dt) {
  const int size = comm_.size();
  const int rank = comm_.rank();
  const int tag = next_tag();
  CollSpan span(comm_, "alltoall", coll_flow(comm_.context(), epoch_),
                dt->shape_digest());
  const std::int64_t block = dt->size() * count;
  const bool contig = dt->is_contiguous(count);
  const auto* in = static_cast<const std::byte*>(sendbuf);
  auto* out = static_cast<std::byte*>(recvbuf);
  // Pairwise exchange by rotation; k = 0 is the local block.
  for (int k = 0; k < size; ++k) {
    const int to = (rank + k) % size;
    const int from = (rank - k + size) % size;
    Request r = comm_.irecv(out + block_off(dt, from * count), count, dt,
                            from, tag + k);
    Request s =
        comm_.isend(in + block_off(dt, to * count), count, dt, to, tag + k);
    span.sent(block, contig, /*staged=*/false);
    comm_.wait(r);
    comm_.wait(s);
  }
}

void Collectives::reduce(const void* sendbuf, void* recvbuf,
                         std::int64_t count, const DatatypePtr& dt,
                         ReduceOp op, int root) {
  const int size = comm_.size();
  const int rank = comm_.rank();
  const int tag = next_tag();
  CollSpan span(comm_, "reduce", coll_flow(comm_.context(), epoch_),
                dt->shape_digest());
  const Primitive prim = reduce_primitive(dt);
  const std::int64_t bytes = dt->size() * count;
  const bool contig = dt->is_contiguous(count);

  // Work on the packed representation in host memory: pack the local
  // contribution, combine children's packed streams, unpack at the root.
  std::vector<std::byte> acc(static_cast<std::size_t>(bytes));
  {
    const PackStats st = cpu_pack(dt, count, sendbuf, acc);
    comm_.process().pml().charge_cpu_pack(st);
  }
  auto packed = Datatype::contiguous(bytes, kByte());

  const int vrank = (rank - root + size) % size;
  std::vector<std::byte> incoming(static_cast<std::size_t>(bytes));
  // Binomial reduce: absorb children, then forward to the parent.
  int mask = 1;
  while (mask < size) {
    if (vrank & mask) {
      const int parent = (vrank - mask + root) % size;
      comm_.send(acc.data(), 1, packed, parent, tag);
      // The payload crossed the wire as a host-staged packed stream, so
      // it counts as staged regardless of the user layout.
      span.sent(bytes, contig, /*staged=*/true);
      return;  // non-roots are done after forwarding
    }
    const int child_v = vrank + mask;
    if (child_v < size) {
      const int child = (child_v + root) % size;
      comm_.recv(incoming.data(), 1, packed, child, tag);
      apply_op(op, prim, acc.data(), incoming.data(), bytes);
      span.ops(bytes / prim_bytes(prim));
      comm_.process().clock().advance(
          vt::transfer_time(bytes, 4.0));  // ~4 GB/s host reduction
    }
    mask <<= 1;
  }
  // Root: scatter the combined packed stream into the recv layout.
  const PackStats st = cpu_unpack(dt, count, acc, recvbuf);
  comm_.process().pml().charge_cpu_pack(st);
}

void Collectives::allreduce(const void* sendbuf, void* recvbuf,
                            std::int64_t count, const DatatypePtr& dt,
                            ReduceOp op) {
  // Bytes are accounted by the two sub-operations; the allreduce span
  // only marks the composite call's extent in the timeline. It draws its
  // own epoch so its flow is distinct from the nested reduce and bcast
  // chains (and from whatever collective ran before it).
  next_tag();
  CollSpan span(comm_, "allreduce", coll_flow(comm_.context(), epoch_),
                dt->shape_digest());
  reduce(sendbuf, recvbuf, count, dt, op, 0);
  bcast(recvbuf, count, dt, 0);
}

}  // namespace gpuddt::mpi
