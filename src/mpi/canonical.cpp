#include "mpi/canonical.h"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <utility>

namespace gpuddt::mpi {

namespace {

/// Parsed program node: either one contiguous block or a loop over a
/// canonical body. Displacements are relative to the enclosing frame,
/// exactly as in the Instr encoding.
struct Node {
  bool is_block = true;
  std::int64_t disp = 0;
  std::int64_t len = 0;    // block only
  std::int64_t count = 0;  // loop only
  std::int64_t step = 0;   // loop only
  std::vector<Node> kids;  // loop body

  bool operator==(const Node&) const = default;
};

std::vector<Node> parse(std::span<const Instr> prog, std::size_t i0,
                        std::size_t i1) {
  std::vector<Node> out;
  std::size_t i = i0;
  while (i < i1) {
    const Instr& in = prog[i];
    if (in.op == Instr::Op::kBlock) {
      Node n;
      n.is_block = true;
      n.disp = in.disp;
      n.len = in.len;
      out.push_back(std::move(n));
      ++i;
    } else if (in.op == Instr::Op::kLoop) {
      Node n;
      n.is_block = false;
      n.disp = in.disp;
      n.count = in.count;
      n.step = in.step;
      n.kids = parse(prog, i + 1, static_cast<std::size_t>(in.body_end));
      out.push_back(std::move(n));
      i = static_cast<std::size_t>(in.body_end) + 1;
    } else {
      ++i;  // stray kEndLoop (malformed input; skip)
    }
  }
  return out;
}

/// Append preserving emission order, merging a block that continues the
/// previous sibling block (they were already contiguous in the emitted
/// byte order, so the merge is traversal-neutral).
void append_node(std::vector<Node>& out, Node n) {
  if (n.is_block) {
    if (n.len <= 0) return;
    if (!out.empty() && out.back().is_block &&
        out.back().disp + out.back().len == n.disp) {
      out.back().len += n.len;
      return;
    }
  }
  out.push_back(std::move(n));
}

std::vector<Node> canon_seq(std::vector<Node> seq);

/// Simplify one loop whose body is already canonical. May expand into
/// several siblings (count-1 inlining) or collapse to a block.
std::vector<Node> simplify_loop(Node loop) {
  std::vector<Node> out;
  loop.kids = canon_seq(std::move(loop.kids));
  if (loop.count <= 0 || loop.kids.empty()) return out;
  if (loop.count == 1) {
    // Inline: a single iteration is just the body at the loop's frame.
    for (Node& k : loop.kids) {
      k.disp += loop.disp;
      append_node(out, std::move(k));
    }
    return out;
  }
  // Hoist the body's leading displacement so equal shapes reached through
  // different nesting agree on where "the loop" starts.
  const std::int64_t d0 = loop.kids.front().disp;
  if (d0 != 0) {
    for (Node& k : loop.kids) k.disp -= d0;
    loop.disp += d0;
  }
  if (loop.kids.size() == 1) {
    Node& kid = loop.kids.front();
    if (kid.is_block && loop.step == kid.len) {
      // Unit stride: the iterations tile a contiguous region.
      Node blk;
      blk.is_block = true;
      blk.disp = loop.disp;
      blk.len = loop.count * kid.len;
      append_node(out, std::move(blk));
      return out;
    }
    if (!kid.is_block && kid.disp == 0 &&
        loop.step == kid.count * kid.step) {
      // Perfect nesting: outer stride continues the inner progression.
      Node fused;
      fused.is_block = false;
      fused.disp = loop.disp;
      fused.count = loop.count * kid.count;
      fused.step = kid.step;
      fused.kids = std::move(kid.kids);
      append_node(out, std::move(fused));
      return out;
    }
  }
  out.push_back(std::move(loop));
  return out;
}

/// Displacement shift carrying `a` onto `b` when they are structurally
/// identical up to a constant translate; nullopt otherwise.
std::optional<std::int64_t> shift_between(const Node& a, const Node& b) {
  if (a.is_block != b.is_block) return std::nullopt;
  if (a.is_block) {
    if (a.len != b.len) return std::nullopt;
    return b.disp - a.disp;
  }
  if (a.count != b.count || a.step != b.step || a.kids != b.kids)
    return std::nullopt;
  return b.disp - a.disp;
}

/// Re-roll maximal runs of >= 2 translate-identical siblings into a loop
/// (the RegularPattern hiding inside indexed/struct types). One pass;
/// callers iterate to a fixpoint.
std::vector<Node> roll_runs(const std::vector<Node>& seq) {
  std::vector<Node> out;
  std::size_t i = 0;
  while (i < seq.size()) {
    std::size_t j = i;
    std::optional<std::int64_t> d;
    if (i + 1 < seq.size()) d = shift_between(seq[i], seq[i + 1]);
    if (d) {
      j = i + 1;
      while (j + 1 < seq.size() && shift_between(seq[j], seq[j + 1]) == d)
        ++j;
    }
    const std::size_t run = j - i + 1;
    if (run >= 2) {
      Node loop;
      loop.is_block = false;
      loop.count = static_cast<std::int64_t>(run);
      loop.step = *d;
      loop.disp = seq[i].disp;
      Node body = seq[i];
      body.disp = 0;
      loop.kids.push_back(std::move(body));
      // Simplify so e.g. a rolled run of adjacent equal blocks collapses
      // straight back to one contiguous block.
      for (Node& n : simplify_loop(std::move(loop)))
        append_node(out, std::move(n));
      i = j + 1;
      continue;
    }
    append_node(out, seq[i]);
    ++i;
  }
  return out;
}

std::vector<Node> canon_seq(std::vector<Node> seq) {
  std::vector<Node> out;
  for (Node& n : seq) {
    if (n.is_block) {
      append_node(out, std::move(n));
    } else {
      for (Node& s : simplify_loop(std::move(n)))
        append_node(out, std::move(s));
    }
  }
  // Re-roll until stable: folding one run can expose another (a rolled
  // loop may now match a pre-existing sibling loop, or collapse into a
  // block that continues its neighbor). Every fold strictly shrinks the
  // node count, so this terminates.
  for (;;) {
    std::vector<Node> next = roll_runs(out);
    if (next == out) break;
    out = std::move(next);
  }
  return out;
}

void emit(const std::vector<Node>& seq, std::vector<Instr>& out) {
  for (const Node& n : seq) {
    if (n.is_block) {
      out.push_back(Instr::block(n.disp, n.len));
    } else {
      const std::size_t loop_index = out.size();
      out.push_back(Instr::loop(n.count, n.step, n.disp));
      emit(n.kids, out);
      out.push_back(Instr::end_loop());
      out[loop_index].body_end = static_cast<std::int32_t>(out.size() - 1);
    }
  }
}

constexpr std::uint64_t kFnvBasis = 14695981039346656037ULL;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kPrime;
  }
  return h;
}

}  // namespace

std::vector<Instr> canonicalize_program(std::span<const Instr> program) {
  const std::vector<Node> tree =
      canon_seq(parse(program, 0, program.size()));
  std::vector<Instr> out;
  out.reserve(program.size());
  emit(tree, out);
  return out;
}

bool program_well_formed(std::span<const Instr> program) {
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < program.size(); ++i) {
    const Instr& in = program[i];
    switch (in.op) {
      case Instr::Op::kBlock:
        if (in.len < 0) return false;
        break;
      case Instr::Op::kLoop:
        if (in.count < 0) return false;
        stack.push_back(i);
        break;
      case Instr::Op::kEndLoop: {
        if (stack.empty()) return false;
        const std::size_t open = stack.back();
        stack.pop_back();
        if (static_cast<std::size_t>(program[open].body_end) != i) {
          return false;
        }
        break;
      }
    }
  }
  return stack.empty();
}

std::uint64_t shape_digest(std::span<const Instr> canonical,
                           std::int64_t extent) {
  std::uint64_t h = kFnvBasis;
  h = fnv1a(h, static_cast<std::uint64_t>(canonical.size()));
  for (const Instr& in : canonical) {
    h = fnv1a(h, static_cast<std::uint64_t>(in.op));
    switch (in.op) {
      case Instr::Op::kLoop:
        h = fnv1a(h, static_cast<std::uint64_t>(in.count));
        h = fnv1a(h, static_cast<std::uint64_t>(in.step));
        h = fnv1a(h, static_cast<std::uint64_t>(in.disp));
        break;
      case Instr::Op::kBlock:
        h = fnv1a(h, static_cast<std::uint64_t>(in.disp));
        h = fnv1a(h, static_cast<std::uint64_t>(in.len));
        break;
      case Instr::Op::kEndLoop:
        break;
    }
  }
  h = fnv1a(h, static_cast<std::uint64_t>(extent));
  return h;
}

}  // namespace gpuddt::mpi
