#include "mpi/stream_triggered.h"

#include <cstdlib>
#include <cstring>

namespace gpuddt::mpi {

namespace {

std::optional<bool>& forced() {
  static std::optional<bool> f;
  return f;
}

bool env_enabled(bool fallback) {
  const char* v = std::getenv("GPUDDT_STREAM_TRIGGERED");
  if (v == nullptr || *v == '\0') return fallback;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

}  // namespace

bool stream_triggered_default() {
#ifdef GPUDDT_STREAM_TRIGGERED_DEFAULT
  constexpr bool build_default = true;
#else
  constexpr bool build_default = false;
#endif
  const bool env = env_enabled(build_default);
  return forced().value_or(env);
}

bool stream_triggered_enabled(int runtime_knob) {
  if (runtime_knob >= 0) return runtime_knob != 0;
  return stream_triggered_default();
}

void set_stream_triggered_forced(std::optional<bool> f) { forced() = f; }

}  // namespace gpuddt::mpi
