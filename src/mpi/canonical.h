// Canonical datatype form - the TEMPI-style normalization pass.
//
// Two datatypes built through different constructor paths (a contiguous
// run of doubles vs. a blocklen-N vector with unit stride vs. an hvector
// whose byte stride equals its block length...) describe the same memory
// shape, yet each committed instance gets its own compiled program and -
// before this pass - its own DEV-cache entry. canonicalize_program()
// reduces a compiled loop/block program to a canonical representation:
//
//   * empty loops and zero-length blocks are dropped,
//   * count-1 loops are inlined into their parent (nested
//     contiguous/vector chain collapse),
//   * a loop over a single block whose step equals the block length is
//     folded into one contiguous block (hvector with unit stride),
//   * adjacent sibling blocks that continue each other are merged,
//   * perfectly nested loops (outer step == inner count * inner step)
//     are fused into one loop,
//   * maximal runs of >= 2 structurally identical siblings at a constant
//     displacement shift are re-rolled into a loop - this is what
//     surfaces the blocklen/stride/count RegularPattern hiding inside
//     kIndexed / kIndexedBlock / kStruct types, and
//   * every loop hoists its body's leading displacement into its own.
//
// All rules preserve the byte-visit order of the traversal exactly, so
// the canonical program packs identically to the compiled one; rules that
// merge blocks only merge blocks that were already contiguous in the
// emitted order. shape_digest() then hashes the canonical program plus
// the extent (which governs multi-element placement) into a stable
// 64-bit key: structurally equal types collide by construction, and the
// DEV cache (core/dev_cache.h) keys on this digest instead of the
// per-instance type_id.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpi/datatype.h"

namespace gpuddt::mpi {

/// Reduce a compiled loop/block program to canonical form. The result
/// emits exactly the same byte sequence in the same order.
std::vector<Instr> canonicalize_program(std::span<const Instr> program);

/// Structural sanity of a loop/block program: every kLoop's body_end
/// links the matching kEndLoop, nesting balances, and no count/length
/// is negative. The static verifier (src/verify/) checks this before
/// interpreting any program; malformed programs fail the
/// program_well_formed obligation instead of crashing the walkers.
bool program_well_formed(std::span<const Instr> program);

/// Stable 64-bit digest of a canonical program plus the type extent
/// (FNV-1a over the instruction stream). Equal shapes - same canonical
/// program, same extent - produce equal digests regardless of how the
/// type was constructed.
std::uint64_t shape_digest(std::span<const Instr> canonical,
                           std::int64_t extent);

}  // namespace gpuddt::mpi
