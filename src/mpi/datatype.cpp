#include "mpi/datatype.h"

#include <algorithm>

#include "mpi/canonical.h"
#include <atomic>
#include <sstream>
#include <vector>
#include <stdexcept>

namespace gpuddt::mpi {

namespace {

constexpr std::size_t kMaxSignatureRuns = 64;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  constexpr std::uint64_t kPrime = 1099511628211ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kPrime;
  }
  return h;
}

constexpr std::uint64_t kFnvBasis = 14695981039346656037ULL;

void sig_append_run(Signature& sig, Primitive p, std::int64_t count) {
  if (count <= 0) return;
  sig.total_primitives += count;
  if (sig.overflow_hash != 0 || sig.runs.size() >= kMaxSignatureRuns) {
    if (!sig.runs.empty() && sig.runs.back().prim == p &&
        sig.overflow_hash == 0) {
      sig.runs.back().count += count;
      return;
    }
    if (sig.overflow_hash == 0) sig.overflow_hash = kFnvBasis;
    sig.overflow_hash = fnv1a(sig.overflow_hash, static_cast<std::uint64_t>(p));
    sig.overflow_hash =
        fnv1a(sig.overflow_hash, static_cast<std::uint64_t>(count));
    return;
  }
  if (!sig.runs.empty() && sig.runs.back().prim == p) {
    sig.runs.back().count += count;
    return;
  }
  sig.runs.push_back({p, count});
}

void sig_append(Signature& sig, const Signature& other,
                std::int64_t times = 1) {
  if (times <= 0) return;
  if (other.overflow_hash != 0) {
    // The child already overflowed: fold it in structurally.
    if (sig.overflow_hash == 0) sig.overflow_hash = kFnvBasis;
    for (const auto& r : other.runs) {
      sig.overflow_hash =
          fnv1a(sig.overflow_hash, static_cast<std::uint64_t>(r.prim));
      sig.overflow_hash =
          fnv1a(sig.overflow_hash, static_cast<std::uint64_t>(r.count));
    }
    sig.overflow_hash = fnv1a(sig.overflow_hash, other.overflow_hash);
    sig.overflow_hash = fnv1a(sig.overflow_hash,
                              static_cast<std::uint64_t>(times));
    sig.total_primitives += other.total_primitives * times;
    return;
  }
  if (other.runs.size() == 1) {
    sig_append_run(sig, other.runs[0].prim, other.runs[0].count * times);
    return;
  }
  for (std::int64_t t = 0; t < times; ++t) {
    for (const auto& r : other.runs) sig_append_run(sig, r.prim, r.count);
    if (sig.overflow_hash != 0 && other.runs.size() > 1) {
      // Remaining repetitions fold in one shot.
      if (t + 1 < times) {
        sig.overflow_hash =
            fnv1a(sig.overflow_hash, static_cast<std::uint64_t>(times - t - 1));
        for (const auto& r : other.runs) {
          sig.overflow_hash =
              fnv1a(sig.overflow_hash, static_cast<std::uint64_t>(r.prim));
          sig.overflow_hash =
              fnv1a(sig.overflow_hash, static_cast<std::uint64_t>(r.count));
        }
        sig.total_primitives += other.total_primitives * (times - t - 1);
      }
      return;
    }
  }
}

/// Append `src` into `dst`, shifting top-level displacements by `shift` and
/// merging a leading block with a trailing contiguous one.
void append_program(std::vector<Instr>& dst, std::span<const Instr> src,
                    std::int64_t shift) {
  int depth = 0;
  const std::size_t base_index = dst.size();
  for (const Instr& in : src) {
    Instr i = in;
    switch (i.op) {
      case Instr::Op::kLoop:
        if (depth == 0) i.disp += shift;
        ++depth;
        break;
      case Instr::Op::kEndLoop:
        --depth;
        break;
      case Instr::Op::kBlock:
        if (depth == 0) {
          i.disp += shift;
          if (dst.size() == base_index && !dst.empty() &&
              dst.back().op == Instr::Op::kBlock &&
              dst.back().disp + dst.back().len == i.disp) {
            // src's leading top-level block continues dst's trailing block.
            dst.back().len += i.len;
            continue;
          }
        }
        break;
    }
    dst.push_back(i);
  }
  // Re-link loop body_end indices for the copied region.
  std::vector<std::size_t> stack;
  for (std::size_t k = base_index; k < dst.size(); ++k) {
    if (dst[k].op == Instr::Op::kLoop) {
      stack.push_back(k);
    } else if (dst[k].op == Instr::Op::kEndLoop) {
      dst[stack.back()].body_end = static_cast<std::int32_t>(k);
      stack.pop_back();
    }
  }
}

/// Wrap `body` in Loop(count, step) at displacement `disp`, collapsing the
/// trivial shapes (count 1; strided single block whose stride equals its
/// length).
void emit_loop(std::vector<Instr>& dst, std::int64_t count, std::int64_t step,
               std::int64_t disp, std::span<const Instr> body) {
  if (count <= 0 || body.empty()) return;
  if (count == 1) {
    append_program(dst, body, disp);
    return;
  }
  if (body.size() == 1 && body[0].op == Instr::Op::kBlock &&
      step == body[0].len) {
    Instr merged = Instr::block(disp + body[0].disp, count * body[0].len);
    if (!dst.empty() && dst.back().op == Instr::Op::kBlock &&
        dst.back().disp + dst.back().len == merged.disp) {
      dst.back().len += merged.len;
    } else {
      dst.push_back(merged);
    }
    return;
  }
  const std::size_t loop_index = dst.size();
  dst.push_back(Instr::loop(count, step, disp));
  append_program(dst, body, 0);
  dst.push_back(Instr::end_loop());
  dst[loop_index].body_end = static_cast<std::int32_t>(dst.size() - 1);
}

struct WalkResult {
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::int64_t size = 0;
  std::int64_t blocks = 0;
  bool any = false;
};

/// Static analysis of a program region [i0, i1): bounds, size, block count.
WalkResult walk(std::span<const Instr> prog, std::size_t i0, std::size_t i1) {
  WalkResult r;
  std::size_t i = i0;
  while (i < i1) {
    const Instr& in = prog[i];
    if (in.op == Instr::Op::kBlock) {
      if (!r.any) {
        r.min = in.disp;
        r.max = in.disp + in.len;
        r.any = true;
      } else {
        r.min = std::min(r.min, in.disp);
        r.max = std::max(r.max, in.disp + in.len);
      }
      r.size += in.len;
      r.blocks += 1;
      ++i;
    } else if (in.op == Instr::Op::kLoop) {
      const WalkResult b =
          walk(prog, i + 1, static_cast<std::size_t>(in.body_end));
      if (b.any && in.count > 0) {
        const std::int64_t iter_lo =
            in.step >= 0 ? 0 : (in.count - 1) * in.step;
        const std::int64_t iter_hi =
            in.step >= 0 ? (in.count - 1) * in.step : 0;
        const std::int64_t lo = in.disp + iter_lo + b.min;
        const std::int64_t hi = in.disp + iter_hi + b.max;
        if (!r.any) {
          r.min = lo;
          r.max = hi;
          r.any = true;
        } else {
          r.min = std::min(r.min, lo);
          r.max = std::max(r.max, hi);
        }
      }
      r.size += in.count * b.size;
      r.blocks += in.count * b.blocks;
      i = static_cast<std::size_t>(in.body_end) + 1;
    } else {
      ++i;  // stray kEndLoop (never happens for well-formed programs)
    }
  }
  return r;
}

std::atomic<std::uint64_t> g_next_type_id{1};

}  // namespace

std::uint64_t Signature::hash() const {
  std::uint64_t h = kFnvBasis;
  for (const auto& r : runs) {
    h = fnv1a(h, static_cast<std::uint64_t>(r.prim));
    h = fnv1a(h, static_cast<std::uint64_t>(r.count));
  }
  h = fnv1a(h, overflow_hash);
  return h;
}

const char* primitive_name(Primitive p) {
  switch (p) {
    case Primitive::kByte:
      return "byte";
    case Primitive::kChar:
      return "char";
    case Primitive::kInt32:
      return "int32";
    case Primitive::kInt64:
      return "int64";
    case Primitive::kFloat:
      return "float";
    case Primitive::kDouble:
      return "double";
  }
  return "?";
}

const char* combiner_name(Combiner c) {
  switch (c) {
    case Combiner::kNamed: return "named";
    case Combiner::kContiguous: return "contiguous";
    case Combiner::kVector: return "vector";
    case Combiner::kHvector: return "hvector";
    case Combiner::kIndexed: return "indexed";
    case Combiner::kHindexed: return "hindexed";
    case Combiner::kIndexedBlock: return "indexed_block";
    case Combiner::kStruct: return "struct";
    case Combiner::kSubarray: return "subarray";
    case Combiner::kDarray: return "darray";
    case Combiner::kResized: return "resized";
  }
  return "?";
}

namespace {
/// Assemble a TypeContents record (helper for the factory functions).
TypeContents make_contents(Combiner c, std::vector<std::int64_t> ints,
                           std::vector<std::int64_t> addrs,
                           std::vector<DatatypePtr> types) {
  TypeContents tc;
  tc.combiner = c;
  tc.integers = std::move(ints);
  tc.addresses = std::move(addrs);
  tc.types = std::move(types);
  return tc;
}
}  // namespace

DatatypePtr Datatype::finalize(std::vector<Instr> program, Signature sig,
                               std::int64_t lb, std::int64_t extent,
                               TypeContents contents) {
  auto dt = std::shared_ptr<Datatype>(new Datatype());
  dt->contents_ = std::move(contents);
  const WalkResult w = walk(program, 0, program.size());
  dt->program_ = std::move(program);
  dt->signature_ = std::move(sig);
  dt->size_ = w.size;
  dt->true_lb_ = w.any ? w.min : 0;
  dt->true_ub_ = w.any ? w.max : 0;
  dt->blocks_per_element_ = w.blocks;
  if (extent >= 0) {
    dt->lb_ = lb;
    dt->extent_ = extent;
  } else {
    dt->lb_ = dt->true_lb_;
    dt->extent_ = dt->true_ub_ - dt->true_lb_;
  }
  dt->dense_ = dt->program_.size() == 1 &&
               dt->program_[0].op == Instr::Op::kBlock &&
               dt->program_[0].disp == 0 && dt->lb_ == 0 &&
               dt->extent_ == dt->size_;
  dt->type_id_ = g_next_type_id.fetch_add(1, std::memory_order_relaxed);
  dt->canonical_program_ = canonicalize_program(dt->program_);
  dt->shape_digest_ =
      ::gpuddt::mpi::shape_digest(dt->canonical_program_, dt->extent_);
  return dt;
}

DatatypePtr Datatype::primitive(Primitive p) {
  std::vector<Instr> prog{Instr::block(0, primitive_size(p))};
  Signature sig;
  sig_append_run(sig, p, 1);
  return finalize(std::move(prog), std::move(sig), 0, primitive_size(p),
                  make_contents(Combiner::kNamed,
                                {static_cast<std::int64_t>(p)}, {}, {}));
}

DatatypePtr Datatype::contiguous(std::int64_t count, const DatatypePtr& t) {
  if (count < 0) throw std::invalid_argument("contiguous: negative count");
  std::vector<Instr> prog;
  emit_loop(prog, count, t->extent(), 0, t->program());
  Signature sig;
  sig_append(sig, t->signature(), count);
  return finalize(std::move(prog), std::move(sig), 0,
                  count == 0 ? 0 : count * t->extent(),
                  make_contents(Combiner::kContiguous, {count}, {}, {t}));
}

DatatypePtr Datatype::vector(std::int64_t count, std::int64_t blocklen,
                             std::int64_t stride, const DatatypePtr& t) {
  auto dt = hvector(count, blocklen, stride * t->extent(), t);
  const_cast<Datatype*>(dt.get())->contents_ = make_contents(
      Combiner::kVector, {count, blocklen, stride}, {}, {t});
  return dt;
}

DatatypePtr Datatype::hvector(std::int64_t count, std::int64_t blocklen,
                              std::int64_t stride_bytes, const DatatypePtr& t) {
  if (count < 0 || blocklen < 0)
    throw std::invalid_argument("hvector: negative count/blocklen");
  std::vector<Instr> body;
  emit_loop(body, blocklen, t->extent(), 0, t->program());
  std::vector<Instr> prog;
  emit_loop(prog, count, stride_bytes, 0, body);
  Signature sig;
  sig_append(sig, t->signature(), count * blocklen);
  return finalize(std::move(prog), std::move(sig), 0, -1,
                  make_contents(Combiner::kHvector, {count, blocklen},
                                {stride_bytes}, {t}));
}

DatatypePtr Datatype::indexed(std::span<const std::int64_t> blocklens,
                              std::span<const std::int64_t> displs,
                              const DatatypePtr& t) {
  std::vector<std::int64_t> bytes(displs.size());
  for (std::size_t i = 0; i < displs.size(); ++i)
    bytes[i] = displs[i] * t->extent();
  auto dt = hindexed(blocklens, bytes, t);
  std::vector<std::int64_t> ints(1 + blocklens.size() + displs.size());
  ints[0] = static_cast<std::int64_t>(blocklens.size());
  std::copy(blocklens.begin(), blocklens.end(), ints.begin() + 1);
  std::copy(displs.begin(), displs.end(),
            ints.begin() + 1 + static_cast<std::ptrdiff_t>(blocklens.size()));
  const_cast<Datatype*>(dt.get())->contents_ =
      make_contents(Combiner::kIndexed, std::move(ints), {}, {t});
  return dt;
}

DatatypePtr Datatype::hindexed(std::span<const std::int64_t> blocklens,
                               std::span<const std::int64_t> displs_bytes,
                               const DatatypePtr& t) {
  if (blocklens.size() != displs_bytes.size())
    throw std::invalid_argument("hindexed: mismatched argument lengths");
  std::vector<Instr> prog;
  Signature sig;
  std::int64_t total_blocks = 0;
  for (std::size_t i = 0; i < blocklens.size(); ++i) {
    if (blocklens[i] < 0)
      throw std::invalid_argument("hindexed: negative blocklen");
    std::vector<Instr> body;
    emit_loop(body, blocklens[i], t->extent(), 0, t->program());
    append_program(prog, body, displs_bytes[i]);
    total_blocks += blocklens[i];
  }
  sig_append(sig, t->signature(), total_blocks);
  return finalize(
      std::move(prog), std::move(sig), 0, -1,
      make_contents(Combiner::kHindexed,
                    [&] {
                      std::vector<std::int64_t> ints;
                      ints.push_back(
                          static_cast<std::int64_t>(blocklens.size()));
                      ints.insert(ints.end(), blocklens.begin(),
                                  blocklens.end());
                      return ints;
                    }(),
                    std::vector<std::int64_t>(displs_bytes.begin(),
                                              displs_bytes.end()),
                    {t}));
}

DatatypePtr Datatype::indexed_block(std::int64_t blocklen,
                                    std::span<const std::int64_t> displs,
                                    const DatatypePtr& t) {
  std::vector<std::int64_t> lens(displs.size(), blocklen);
  auto dt = indexed(lens, displs, t);
  std::vector<std::int64_t> ints;
  ints.push_back(static_cast<std::int64_t>(displs.size()));
  ints.push_back(blocklen);
  ints.insert(ints.end(), displs.begin(), displs.end());
  const_cast<Datatype*>(dt.get())->contents_ =
      make_contents(Combiner::kIndexedBlock, std::move(ints), {}, {t});
  return dt;
}

DatatypePtr Datatype::struct_type(std::span<const std::int64_t> blocklens,
                                  std::span<const std::int64_t> displs_bytes,
                                  std::span<const DatatypePtr> types) {
  if (blocklens.size() != displs_bytes.size() ||
      blocklens.size() != types.size())
    throw std::invalid_argument("struct_type: mismatched argument lengths");
  std::vector<Instr> prog;
  Signature sig;
  for (std::size_t i = 0; i < blocklens.size(); ++i) {
    if (blocklens[i] < 0)
      throw std::invalid_argument("struct_type: negative blocklen");
    std::vector<Instr> body;
    emit_loop(body, blocklens[i], types[i]->extent(), 0, types[i]->program());
    append_program(prog, body, displs_bytes[i]);
    sig_append(sig, types[i]->signature(), blocklens[i]);
  }
  return finalize(
      std::move(prog), std::move(sig), 0, -1,
      make_contents(Combiner::kStruct,
                    [&] {
                      std::vector<std::int64_t> ints;
                      ints.push_back(
                          static_cast<std::int64_t>(blocklens.size()));
                      ints.insert(ints.end(), blocklens.begin(),
                                  blocklens.end());
                      return ints;
                    }(),
                    std::vector<std::int64_t>(displs_bytes.begin(),
                                              displs_bytes.end()),
                    std::vector<DatatypePtr>(types.begin(), types.end())));
}

DatatypePtr Datatype::subarray(std::span<const std::int64_t> sizes,
                               std::span<const std::int64_t> subsizes,
                               std::span<const std::int64_t> starts,
                               const DatatypePtr& t, Order order) {
  const std::size_t ndims = sizes.size();
  if (subsizes.size() != ndims || starts.size() != ndims || ndims == 0)
    throw std::invalid_argument("subarray: mismatched dimensions");
  for (std::size_t d = 0; d < ndims; ++d) {
    if (subsizes[d] < 0 || starts[d] < 0 ||
        starts[d] + subsizes[d] > sizes[d])
      throw std::invalid_argument("subarray: sub-block out of bounds");
  }
  // Element strides per dimension.
  std::vector<std::int64_t> stride(ndims);
  std::vector<std::size_t> dim_order(ndims);  // fastest-varying first
  if (order == Order::kFortran) {
    stride[0] = 1;
    for (std::size_t d = 1; d < ndims; ++d)
      stride[d] = stride[d - 1] * sizes[d - 1];
    for (std::size_t d = 0; d < ndims; ++d) dim_order[d] = d;
  } else {
    stride[ndims - 1] = 1;
    for (std::size_t d = ndims - 1; d-- > 0;)
      stride[d] = stride[d + 1] * sizes[d + 1];
    for (std::size_t d = 0; d < ndims; ++d) dim_order[d] = ndims - 1 - d;
  }
  const std::int64_t esz = t->extent();
  // Innermost contiguous run.
  std::vector<Instr> prog;
  emit_loop(prog, subsizes[dim_order[0]], esz, 0, t->program());
  for (std::size_t k = 1; k < ndims; ++k) {
    const std::size_t d = dim_order[k];
    std::vector<Instr> wrapped;
    emit_loop(wrapped, subsizes[d], stride[d] * esz, 0, prog);
    prog = std::move(wrapped);
  }
  std::int64_t disp0 = 0;
  std::int64_t full = 1;
  for (std::size_t d = 0; d < ndims; ++d) {
    disp0 += starts[d] * stride[d] * esz;
    full *= sizes[d];
  }
  std::vector<Instr> shifted;
  append_program(shifted, prog, disp0);
  Signature sig;
  std::int64_t nsub = 1;
  for (std::size_t d = 0; d < ndims; ++d) nsub *= subsizes[d];
  sig_append(sig, t->signature(), nsub);
  std::vector<std::int64_t> ints;
  ints.push_back(static_cast<std::int64_t>(ndims));
  ints.insert(ints.end(), sizes.begin(), sizes.end());
  ints.insert(ints.end(), subsizes.begin(), subsizes.end());
  ints.insert(ints.end(), starts.begin(), starts.end());
  ints.push_back(order == Order::kC ? 0 : 1);
  return finalize(std::move(shifted), std::move(sig), 0, full * esz,
                  make_contents(Combiner::kSubarray, std::move(ints), {},
                                {t}));
}

namespace {

/// One darray dimension: restrict `p` (the composite of the
/// faster-varying dimensions, one "element" per global index) to this
/// process's share of `gsize` elements, producing a type whose extent is
/// the full dimension (gsize * p->extent()).
DatatypePtr darray_dim(const DatatypePtr& p, std::int64_t gsize,
                       Datatype::Distrib distrib, std::int64_t darg,
                       std::int64_t psize, std::int64_t coord) {
  const std::int64_t ext = p->extent();
  const std::int64_t full_extent = gsize * ext;
  switch (distrib) {
    case Datatype::Distrib::kNone: {
      if (psize != 1)
        throw std::invalid_argument("darray: kNone requires psize == 1");
      return Datatype::resized(Datatype::contiguous(gsize, p), 0,
                               full_extent);
    }
    case Datatype::Distrib::kBlock: {
      std::int64_t b = darg;
      if (b == Datatype::kDefaultDarg) b = (gsize + psize - 1) / psize;
      if (b * psize < gsize)
        throw std::invalid_argument("darray: block size too small");
      const std::int64_t mysize =
          std::clamp<std::int64_t>(gsize - b * coord, 0, b);
      const std::int64_t lens[] = {mysize};
      const std::int64_t displs[] = {coord * b * ext};
      const DatatypePtr types[] = {p};
      return Datatype::resized(
          Datatype::struct_type(lens, displs, types), 0, full_extent);
    }
    case Datatype::Distrib::kCyclic: {
      const std::int64_t b = darg == Datatype::kDefaultDarg ? 1 : darg;
      if (b <= 0) throw std::invalid_argument("darray: bad cyclic block");
      const std::int64_t nblocks = (gsize + b - 1) / b;
      const std::int64_t count =
          coord < nblocks ? (nblocks - coord - 1) / psize + 1 : 0;
      if (count == 0) {
        return Datatype::resized(Datatype::contiguous(0, p), 0, full_extent);
      }
      const std::int64_t my_last = coord + (count - 1) * psize;
      const bool tail_partial =
          my_last == nblocks - 1 && gsize % b != 0;
      const std::int64_t n_full = tail_partial ? count - 1 : count;
      const DatatypePtr main =
          Datatype::hvector(n_full, b, psize * b * ext, p);
      DatatypePtr body;
      if (n_full > 0 && tail_partial) {
        const std::int64_t tail_len = gsize - my_last * b;
        const std::int64_t lens[] = {1, tail_len};
        const std::int64_t displs[] = {coord * b * ext, my_last * b * ext};
        const DatatypePtr types[] = {main, p};
        body = Datatype::struct_type(lens, displs, types);
      } else if (n_full > 0) {
        const std::int64_t lens[] = {1};
        const std::int64_t displs[] = {coord * b * ext};
        const DatatypePtr types[] = {main};
        body = Datatype::struct_type(lens, displs, types);
      } else {
        const std::int64_t tail_len = gsize - my_last * b;
        const std::int64_t lens[] = {tail_len};
        const std::int64_t displs[] = {my_last * b * ext};
        const DatatypePtr types[] = {p};
        body = Datatype::struct_type(lens, displs, types);
      }
      return Datatype::resized(body, 0, full_extent);
    }
  }
  throw std::invalid_argument("darray: unknown distribution");
}

}  // namespace

DatatypePtr Datatype::darray(int world_size, int rank,
                             std::span<const std::int64_t> gsizes,
                             std::span<const Distrib> distribs,
                             std::span<const std::int64_t> dargs,
                             std::span<const std::int64_t> psizes,
                             const DatatypePtr& t, Order order) {
  const std::size_t ndims = gsizes.size();
  if (distribs.size() != ndims || dargs.size() != ndims ||
      psizes.size() != ndims || ndims == 0)
    throw std::invalid_argument("darray: mismatched dimensions");
  std::int64_t grid = 1;
  for (std::size_t d = 0; d < ndims; ++d) {
    if (psizes[d] <= 0 || gsizes[d] < 0)
      throw std::invalid_argument("darray: bad sizes");
    grid *= psizes[d];
  }
  if (grid != world_size)
    throw std::invalid_argument("darray: process grid != world size");
  if (rank < 0 || rank >= world_size)
    throw std::invalid_argument("darray: bad rank");

  // Process-grid coordinates: C (row-major) rank ordering, per MPI.
  std::vector<std::int64_t> coord(ndims);
  {
    int r = rank;
    for (std::size_t d = ndims; d-- > 0;) {
      coord[d] = r % psizes[d];
      r = static_cast<int>(r / psizes[d]);
    }
  }

  // Compose from the fastest-varying dimension outward.
  DatatypePtr composite = t;
  if (order == Order::kFortran) {
    for (std::size_t d = 0; d < ndims; ++d)
      composite = darray_dim(composite, gsizes[d], distribs[d], dargs[d],
                             psizes[d], coord[d]);
  } else {
    for (std::size_t d = ndims; d-- > 0;)
      composite = darray_dim(composite, gsizes[d], distribs[d], dargs[d],
                             psizes[d], coord[d]);
  }
  std::vector<std::int64_t> ints;
  ints.push_back(world_size);
  ints.push_back(rank);
  ints.push_back(static_cast<std::int64_t>(ndims));
  ints.insert(ints.end(), gsizes.begin(), gsizes.end());
  for (auto d : distribs) ints.push_back(static_cast<std::int64_t>(d));
  ints.insert(ints.end(), dargs.begin(), dargs.end());
  ints.insert(ints.end(), psizes.begin(), psizes.end());
  ints.push_back(order == Order::kC ? 0 : 1);
  const_cast<Datatype*>(composite.get())->contents_ =
      make_contents(Combiner::kDarray, std::move(ints), {}, {t});
  return composite;
}

DatatypePtr Datatype::resized(const DatatypePtr& t, std::int64_t lb,
                              std::int64_t extent) {
  Signature sig = t->signature();
  std::vector<Instr> prog = t->program();
  return finalize(std::move(prog), std::move(sig), lb, extent,
                  make_contents(Combiner::kResized, {}, {lb, extent}, {t}));
}

bool Datatype::is_contiguous(std::int64_t count) const {
  if (size_ == 0 || count == 0) return true;
  if (size_ != true_ub_ - true_lb_) return false;
  if (blocks_per_element_ != 1) return false;
  return count == 1 || extent_ == size_;
}

std::optional<RegularPattern> Datatype::regular_pattern(
    std::int64_t count) const {
  // Decided on the canonical program: a uniform strided pattern hiding
  // inside an indexed/struct construction re-rolls into the 3-instr
  // loop{block} shape and takes the vector fast path too.
  const std::vector<Instr>& prog = canonical_program_;
  if (count <= 0 || prog.empty()) return std::nullopt;
  if (prog.size() == 1 && prog[0].op == Instr::Op::kBlock) {
    const Instr& b = prog[0];
    if (count == 1 || extent_ == b.len) {
      return RegularPattern{b.disp, count * b.len, count * b.len, 1};
    }
    return RegularPattern{b.disp, b.len, extent_, count};
  }
  if (prog.size() == 3 && prog[0].op == Instr::Op::kLoop &&
      prog[1].op == Instr::Op::kBlock &&
      prog[2].op == Instr::Op::kEndLoop) {
    const Instr& lp = prog[0];
    const Instr& b = prog[1];
    // Uniform across element boundaries only if the next element's first
    // block continues the same arithmetic progression.
    if (count == 1 || extent_ == lp.count * lp.step) {
      return RegularPattern{lp.disp + b.disp, b.len, lp.step,
                            lp.count * count};
    }
  }
  return std::nullopt;
}

std::string Datatype::describe() const {
  std::ostringstream os;
  os << "ddt{size=" << size_ << ", extent=" << extent_ << ", lb=" << lb_
     << ", blocks/elem=" << blocks_per_element_ << ", prog=[";
  for (std::size_t i = 0; i < program_.size(); ++i) {
    const Instr& in = program_[i];
    if (i) os << " ";
    switch (in.op) {
      case Instr::Op::kLoop:
        os << "loop(n=" << in.count << ",step=" << in.step
           << ",disp=" << in.disp << "){";
        break;
      case Instr::Op::kEndLoop:
        os << "}";
        break;
      case Instr::Op::kBlock:
        os << "blk(" << in.disp << "," << in.len << ")";
        break;
    }
  }
  os << "]}";
  return os.str();
}

std::string Datatype::describe_tree() const {
  const TypeContents& tc = contents_;
  std::ostringstream os;
  switch (tc.combiner) {
    case Combiner::kNamed:
      return primitive_name(static_cast<Primitive>(tc.integers.at(0)));
    case Combiner::kContiguous:
      os << "contiguous(" << tc.integers.at(0) << ", "
         << tc.types.at(0)->describe_tree() << ")";
      break;
    case Combiner::kVector:
      os << "vector(" << tc.integers.at(0) << ", " << tc.integers.at(1)
         << ", " << tc.integers.at(2) << ", "
         << tc.types.at(0)->describe_tree() << ")";
      break;
    case Combiner::kHvector:
      os << "hvector(" << tc.integers.at(0) << ", " << tc.integers.at(1)
         << ", " << tc.addresses.at(0) << "B, "
         << tc.types.at(0)->describe_tree() << ")";
      break;
    case Combiner::kIndexed:
    case Combiner::kHindexed:
      os << combiner_name(tc.combiner) << "(" << tc.integers.at(0)
         << " blocks, " << tc.types.at(0)->describe_tree() << ")";
      break;
    case Combiner::kIndexedBlock:
      os << "indexed_block(" << tc.integers.at(0) << " x "
         << tc.integers.at(1) << ", " << tc.types.at(0)->describe_tree()
         << ")";
      break;
    case Combiner::kStruct: {
      os << "struct(" << tc.integers.at(0) << " fields:";
      for (std::size_t i = 0; i < tc.types.size(); ++i) {
        os << (i ? ", " : " ") << tc.types[i]->describe_tree();
      }
      os << ")";
      break;
    }
    case Combiner::kSubarray:
      os << "subarray(" << tc.integers.at(0) << "D, "
         << tc.types.at(0)->describe_tree() << ")";
      break;
    case Combiner::kDarray:
      os << "darray(rank " << tc.integers.at(1) << "/" << tc.integers.at(0)
         << ", " << tc.integers.at(2) << "D, "
         << tc.types.at(0)->describe_tree() << ")";
      break;
    case Combiner::kResized:
      os << "resized(lb=" << tc.addresses.at(0)
         << ", extent=" << tc.addresses.at(1) << ", "
         << tc.types.at(0)->describe_tree() << ")";
      break;
  }
  return os.str();
}

namespace {
const DatatypePtr& singleton(Primitive p) {
  static const std::array<DatatypePtr, 6> kTypes = {
      Datatype::primitive(Primitive::kByte),
      Datatype::primitive(Primitive::kChar),
      Datatype::primitive(Primitive::kInt32),
      Datatype::primitive(Primitive::kInt64),
      Datatype::primitive(Primitive::kFloat),
      Datatype::primitive(Primitive::kDouble),
  };
  return kTypes[static_cast<std::size_t>(p)];
}
}  // namespace

const DatatypePtr& kByte() { return singleton(Primitive::kByte); }
const DatatypePtr& kChar() { return singleton(Primitive::kChar); }
const DatatypePtr& kInt32() { return singleton(Primitive::kInt32); }
const DatatypePtr& kInt64() { return singleton(Primitive::kInt64); }
const DatatypePtr& kFloat() { return singleton(Primitive::kFloat); }
const DatatypePtr& kDouble() { return singleton(Primitive::kDouble); }

}  // namespace gpuddt::mpi
