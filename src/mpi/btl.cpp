#include "mpi/btl.h"

#include <algorithm>
#include <cstring>

namespace gpuddt::mpi {

// --- SmBtl -------------------------------------------------------------------

// Channels and links are directional (full-duplex): traffic a->b never
// contends with b->a. Besides matching real fabrics, this keeps each
// resource single-writer in steady state, which makes virtual timelines
// deterministic across runs.
vt::TimedResource& SmBtl::channel(int a, int b) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = chans_[std::make_pair(a, b)];
  if (!slot) slot = std::make_unique<vt::TimedResource>();
  return *slot;
}

vt::Time SmBtl::am_send(Process& src, int dst_rank, int handler,
                        std::vector<std::byte> payload, vt::Time earliest) {
  const sg::CostModel& cm = src.runtime().machine().cost();
  // Small header/doorbell cost on the sender core.
  src.clock().advance(vt::usec(0.2));
  const vt::Time start = std::max(src.clock().now(), earliest);
  const vt::Time dur =
      cm.sm_latency_ns +
      vt::transfer_time(static_cast<std::int64_t>(payload.size()), cm.sm_gbps);
  const auto r = channel(src.rank(), dst_rank).reserve(start, dur);
  AmMessage m;
  m.handler = handler;
  m.src_rank = src.rank();
  m.arrival = r.finish;
  m.payload = std::move(payload);
  src.runtime().process(dst_rank).deliver(std::move(m));
  return r.finish;
}

vt::Time SmBtl::rdma_get(Process& self, int /*peer_rank*/, void* local,
                         const void* remote, std::size_t bytes,
                         vt::Time earliest) {
  // Intra-node one-sided read: CUDA IPC (device memory) or plain
  // shared-memory copy. TimedCopy picks the right resources from the
  // pointer registry.
  return sg::TimedCopy(self.gpu(), local, remote, bytes, earliest,
                       "sm_rdma_get");
}

vt::Time SmBtl::rdma_put(Process& self, int /*peer_rank*/, void* remote,
                         const void* local, std::size_t bytes,
                         vt::Time earliest) {
  return sg::TimedCopy(self.gpu(), remote, local, bytes, earliest,
                       "sm_rdma_put");
}

bool SmBtl::supports_gpu_rdma(const Process& self, int /*peer*/) const {
  return self.config().ipc_enabled && !self.config().force_copy_inout;
}

// --- IbBtl ------------------------------------------------------------------------

vt::TimedResource& IbBtl::link(int node_a, int node_b, bool large) {
  std::lock_guard<std::mutex> lock(mu_);
  // Small control messages stay on rail 0 (keeps the handshake latency
  // path warm); large payloads round-robin across the configured rails.
  int rail = 0;
  const int rails = std::max(1, rt_.config().ib_rails);
  if (large && rails > 1) {
    int& next = next_rail_[std::make_pair(node_a, node_b)];
    rail = next;
    next = (next + 1) % rails;
  }
  auto& slot = links_[std::make_tuple(node_a, node_b, rail)];  // directional
  if (!slot) slot = std::make_unique<vt::TimedResource>();
  return *slot;
}

int IbBtl::leaf_of(int node) const {
  const int per_leaf = rt_.machine().config().topo.fat_tree_leaf_nodes;
  return per_leaf > 0 ? node / per_leaf : -1;
}

vt::TimedResource& IbBtl::leaf_uplink(int leaf, int direction, bool large) {
  std::lock_guard<std::mutex> lock(mu_);
  int up = 0;
  const int uplinks =
      std::max(1, rt_.machine().config().topo.fat_tree_uplinks);
  if (large && uplinks > 1) {
    int& next = next_uplink_[std::make_pair(leaf, direction)];
    up = next;
    next = (next + 1) % uplinks;
  }
  auto& slot = leaf_links_[std::make_tuple(leaf, direction, up)];
  if (!slot) slot = std::make_unique<vt::TimedResource>();
  return *slot;
}

vt::Time IbBtl::charge_fat_tree(Process& p, int src_node, int dst_node,
                                std::int64_t bytes, bool large,
                                vt::Reservation wire) {
  const int src_leaf = leaf_of(src_node);
  const int dst_leaf = leaf_of(dst_node);
  if (src_leaf < 0 || src_leaf == dst_leaf) return wire.finish;
  // Cross-leaf: the packets detour leaf -> spine -> leaf over both
  // leaves' shared uplinks, which concurrent flows from sibling nodes
  // contend for even when their node-pair links are idle. The message
  // streams wormhole-style: each hop starts fat_tree_hop_ns (header
  // latency) after the previous one and then pays the uplink's
  // serialization time, so an uncontended detour costs exactly two hop
  // latencies over the flat fabric and a congested uplink stalls the
  // whole tail.
  const sg::TopologyConfig& topo = p.runtime().machine().config().topo;
  const vt::Time xfer = vt::transfer_time(bytes, topo.fat_tree_uplink_gbps);
  const auto up = leaf_uplink(src_leaf, 0, large)
                      .reserve(wire.start + topo.fat_tree_hop_ns, xfer);
  const auto down = leaf_uplink(dst_leaf, 1, large)
                        .reserve(up.start + topo.fat_tree_hop_ns, xfer);
  return std::max(wire.finish, down.finish);
}

vt::Time IbBtl::am_send(Process& src, int dst_rank, int handler,
                        std::vector<std::byte> payload, vt::Time earliest) {
  const sg::CostModel& cm = src.runtime().machine().cost();
  src.clock().advance(cm.ib_post_ns);
  const vt::Time start = std::max(src.clock().now(), earliest);
  const vt::Time dur =
      cm.ib_latency_ns +
      vt::transfer_time(static_cast<std::int64_t>(payload.size()), cm.ib_gbps);
  const bool large = payload.size() > 4096;
  const int dst_node = src.node_of(dst_rank);
  const auto r = link(src.node(), dst_node, large).reserve(start, dur);
  const vt::Time arrival =
      charge_fat_tree(src, src.node(), dst_node,
                      static_cast<std::int64_t>(payload.size()), large, r);
  AmMessage m;
  m.handler = handler;
  m.src_rank = src.rank();
  m.arrival = arrival;
  m.payload = std::move(payload);
  src.runtime().process(dst_rank).deliver(std::move(m));
  return arrival;
}

vt::Time IbBtl::rdma_get(Process& self, int peer_rank, void* local,
                         const void* remote, std::size_t bytes,
                         vt::Time earliest) {
  const sg::CostModel& cm = self.runtime().machine().cost();
  // GPUDirect RDMA reads remote device memory over the wire; the PCI-E
  // read path caps throughput below the link rate for large messages
  // (the effect behind the paper's choice to pipeline big transfers
  // through host memory, Section 5.2 / [14]).
  const auto remote_attr = self.runtime().machine().query(remote);
  const auto local_attr = self.runtime().machine().query(local);
  double bw = cm.ib_gbps;
  if (remote_attr.space == sg::MemorySpace::kDevice ||
      local_attr.space == sg::MemorySpace::kDevice) {
    // K40-era GPUDirect RDMA reads cross the Ivy Bridge root complex at
    // well under 1 GB/s - the measured effect behind the paper's "only
    // interesting for small messages (less than 30KB)" observation.
    bw = std::min(bw, cm.ib_gbps * 0.24);
  }
  const vt::Time dur = cm.ib_latency_ns + cm.pcie_latency_ns +
                       vt::transfer_time(static_cast<std::int64_t>(bytes), bw);
  const bool large = bytes > 4096;
  const int peer_node = self.node_of(peer_rank);
  const auto r = link(self.node(), peer_node, large).reserve(earliest, dur);
  const vt::Time finish =
      charge_fat_tree(self, self.node(), peer_node,
                      static_cast<std::int64_t>(bytes), large, r);
  std::memcpy(local, remote, bytes);
  // The wire bytes move outside the GPU runtime's calls; report them to
  // the access checker so GPUDirect reads participate in hazard analysis.
  const sg::MemRange ranges[] = {
      {remote, static_cast<std::int64_t>(bytes), false},
      {local, static_cast<std::int64_t>(bytes), true}};
  sg::NoteAccess(self.gpu(), "ib_rdma", std::max(earliest, vt::Time{0}),
                 finish, ranges);
  return finish;
}

vt::Time IbBtl::rdma_put(Process& self, int peer_rank, void* remote,
                         const void* local, std::size_t bytes,
                         vt::Time earliest) {
  // Same wire path as a get, initiated from this side.
  return rdma_get(self, peer_rank, remote, local, bytes, earliest);
}

bool IbBtl::supports_gpu_rdma(const Process& self, int /*peer*/) const {
  return self.config().gpudirect_rdma && !self.config().force_copy_inout;
}

std::int64_t IbBtl::gpu_rdma_limit(const Process& self) const {
  return self.config().gpudirect_limit_bytes;
}

}  // namespace gpuddt::mpi
