// MPI derived datatypes (DDTs).
//
// A Datatype is an immutable description of a (possibly non-contiguous)
// memory layout, built with the MPI constructors the paper exercises:
// contiguous, vector/hvector, indexed/hindexed/indexed_block, struct,
// subarray and resized. Internally a committed type is compiled into a
// compact loop/block *program* - the equivalent of Open MPI's stack-based
// representation - which both the CPU pack engine (cursor.h) and the GPU
// datatype engine (src/core) traverse.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace gpuddt::mpi {

enum class Primitive : std::uint8_t {
  kByte,
  kChar,
  kInt32,
  kInt64,
  kFloat,
  kDouble,
};

constexpr std::int64_t primitive_size(Primitive p) {
  switch (p) {
    case Primitive::kByte:
    case Primitive::kChar:
      return 1;
    case Primitive::kInt32:
    case Primitive::kFloat:
      return 4;
    case Primitive::kInt64:
    case Primitive::kDouble:
      return 8;
  }
  return 1;
}

const char* primitive_name(Primitive p);

/// One instruction of a compiled datatype program. A program describes one
/// element of the type; multi-`count` operations wrap it in an implicit
/// outer loop advancing by the type's extent.
struct Instr {
  enum class Op : std::uint8_t { kLoop, kEndLoop, kBlock };

  Op op = Op::kBlock;
  // kLoop fields: execute body `count` times; iteration i's frame base is
  // parent_base + disp + i * step. `body_end` indexes the matching
  // kEndLoop within the program.
  std::int64_t count = 0;
  std::int64_t step = 0;
  std::int32_t body_end = 0;
  // kBlock fields (disp also used by kLoop as the frame displacement):
  // `len` contiguous bytes at frame_base + disp.
  std::int64_t disp = 0;
  std::int64_t len = 0;

  static Instr block(std::int64_t disp, std::int64_t len) {
    Instr i;
    i.op = Op::kBlock;
    i.disp = disp;
    i.len = len;
    return i;
  }
  static Instr loop(std::int64_t count, std::int64_t step,
                    std::int64_t disp = 0) {
    Instr i;
    i.op = Op::kLoop;
    i.count = count;
    i.step = step;
    i.disp = disp;
    return i;
  }
  static Instr end_loop() {
    Instr i;
    i.op = Op::kEndLoop;
    return i;
  }

  bool operator==(const Instr&) const = default;
};

/// Run-length-encoded primitive sequence: the datatype *signature*. Two
/// types with equal signatures may be used as matching send/recv types
/// (e.g. a vector of N doubles matches a contiguous block of N doubles).
struct Signature {
  struct Run {
    Primitive prim;
    std::int64_t count;
    bool operator==(const Run&) const = default;
  };
  /// Runs, possibly truncated; when truncated `overflow_hash` folds in the
  /// remainder so equality stays sound (hash-equality, collision-unlikely).
  std::vector<Run> runs;
  std::uint64_t overflow_hash = 0;
  std::int64_t total_primitives = 0;

  bool operator==(const Signature&) const = default;
  std::uint64_t hash() const;
};

class Datatype;
using DatatypePtr = std::shared_ptr<const Datatype>;

/// Constructor kinds, as MPI_Type_get_envelope reports them.
enum class Combiner : std::uint8_t {
  kNamed,  // a predefined primitive
  kContiguous,
  kVector,
  kHvector,
  kIndexed,
  kHindexed,
  kIndexedBlock,
  kStruct,
  kSubarray,
  kDarray,
  kResized,
};

const char* combiner_name(Combiner c);

/// The reconstruction recipe of a derived type (MPI_Type_get_contents):
/// integer arguments (counts, blocklengths, sizes...), address arguments
/// (byte displacements, strides), and the input datatypes, in the same
/// order the constructor took them.
struct TypeContents {
  Combiner combiner = Combiner::kNamed;
  std::vector<std::int64_t> integers;
  std::vector<std::int64_t> addresses;
  std::vector<DatatypePtr> types;
};

/// Compact description of a strided layout, used to route onto the GPU
/// vector fast path: `count` blocks of `blocklen` bytes, consecutive block
/// starts `stride` bytes apart, first block at `first_disp`.
struct RegularPattern {
  std::int64_t first_disp = 0;
  std::int64_t blocklen = 0;
  std::int64_t stride = 0;
  std::int64_t count = 0;
};

class Datatype : public std::enable_shared_from_this<Datatype> {
 public:
  // --- Constructors (factories) ------------------------------------------
  static DatatypePtr primitive(Primitive p);
  static DatatypePtr contiguous(std::int64_t count, const DatatypePtr& t);
  /// stride counted in elements of `t` (MPI_Type_vector).
  static DatatypePtr vector(std::int64_t count, std::int64_t blocklen,
                            std::int64_t stride, const DatatypePtr& t);
  /// stride counted in bytes (MPI_Type_create_hvector).
  static DatatypePtr hvector(std::int64_t count, std::int64_t blocklen,
                             std::int64_t stride_bytes, const DatatypePtr& t);
  /// displacements counted in elements of `t` (MPI_Type_indexed).
  static DatatypePtr indexed(std::span<const std::int64_t> blocklens,
                             std::span<const std::int64_t> displs,
                             const DatatypePtr& t);
  /// displacements counted in bytes (MPI_Type_create_hindexed).
  static DatatypePtr hindexed(std::span<const std::int64_t> blocklens,
                              std::span<const std::int64_t> displs_bytes,
                              const DatatypePtr& t);
  /// equal blocklength variant (MPI_Type_create_indexed_block).
  static DatatypePtr indexed_block(std::int64_t blocklen,
                                   std::span<const std::int64_t> displs,
                                   const DatatypePtr& t);
  /// location-blocklength-datatype tuples (MPI_Type_create_struct).
  static DatatypePtr struct_type(std::span<const std::int64_t> blocklens,
                                 std::span<const std::int64_t> displs_bytes,
                                 std::span<const DatatypePtr> types);
  enum class Order { kC, kFortran };
  /// n-dimensional sub-array (MPI_Type_create_subarray).
  static DatatypePtr subarray(std::span<const std::int64_t> sizes,
                              std::span<const std::int64_t> subsizes,
                              std::span<const std::int64_t> starts,
                              const DatatypePtr& t, Order order = Order::kC);

  /// Distribution kinds for darray (MPI_Type_create_darray).
  enum class Distrib { kBlock, kCyclic, kNone };
  /// The distributed-array type of HPF / ScaLAPACK: the portion of an
  /// n-dimensional global array owned by process `rank` of a
  /// `psizes`-shaped process grid under per-dimension block / cyclic(b) /
  /// replicated distributions. This is the layout behind ScaLAPACK's
  /// block-cyclic matrices, the paper's motivating library. `dargs[d]`
  /// is the block size for kCyclic (or kDefaultDarg for kBlock's
  /// ceiling-division default; ignored for kNone).
  static constexpr std::int64_t kDefaultDarg = -1;
  static DatatypePtr darray(int world_size, int rank,
                            std::span<const std::int64_t> gsizes,
                            std::span<const Distrib> distribs,
                            std::span<const std::int64_t> dargs,
                            std::span<const std::int64_t> psizes,
                            const DatatypePtr& t, Order order = Order::kC);
  static DatatypePtr resized(const DatatypePtr& t, std::int64_t lb,
                             std::int64_t extent);

  // --- Queries -------------------------------------------------------------
  /// Bytes of actual data per element.
  std::int64_t size() const { return size_; }
  /// Distance between consecutive elements.
  std::int64_t extent() const { return extent_; }
  std::int64_t lb() const { return lb_; }
  std::int64_t ub() const { return lb_ + extent_; }
  /// Bounds of the data actually touched (ignoring resized padding).
  std::int64_t true_lb() const { return true_lb_; }
  std::int64_t true_extent() const { return true_ub_ - true_lb_; }

  /// True when one element is a single dense block starting at offset 0
  /// whose length equals the extent.
  bool is_dense() const { return dense_; }
  /// True when `count` elements of this type form one contiguous region.
  bool is_contiguous(std::int64_t count) const;

  /// Number of contiguous blocks per element (what a pack must gather).
  std::int64_t blocks_per_element() const { return blocks_per_element_; }

  const std::vector<Instr>& program() const { return program_; }
  const Signature& signature() const { return signature_; }

  /// Canonical form of program() (mpi/canonical.h): same byte-visit
  /// order, normalized structure. Structurally equal types - however
  /// they were constructed - share one canonical program. The DEV
  /// conversion walks this form so equal shapes compile to identical
  /// unit lists.
  const std::vector<Instr>& canonical_program() const {
    return canonical_program_;
  }

  /// Stable 64-bit digest of the canonical program + extent: the shape
  /// key the DEV cache is keyed on. Equal for structurally equal types.
  std::uint64_t shape_digest() const { return shape_digest_; }

  /// Unique id of this committed type instance (shape-dedup accounting;
  /// the DEV cache itself keys on shape_digest()).
  std::uint64_t type_id() const { return type_id_; }

  /// How this type was constructed (MPI_Type_get_envelope /
  /// MPI_Type_get_contents).
  const TypeContents& contents() const { return contents_; }
  Combiner combiner() const { return contents_.combiner; }

  /// If `count` elements form a uniform strided pattern, describe it (the
  /// GPU vector fast path); nullopt otherwise.
  std::optional<RegularPattern> regular_pattern(std::int64_t count) const;

  std::string describe() const;

  /// Human-readable constructor tree built from contents(), e.g.
  /// "vector(4, 2, 5, double)" - what a datatype debugger would print.
  std::string describe_tree() const;

 private:
  Datatype() = default;
  static DatatypePtr finalize(std::vector<Instr> program, Signature sig,
                              std::int64_t lb, std::int64_t extent,
                              TypeContents contents = {});

  std::vector<Instr> program_;
  std::vector<Instr> canonical_program_;
  Signature signature_;
  std::int64_t size_ = 0;
  std::int64_t extent_ = 0;
  std::int64_t lb_ = 0;
  std::int64_t true_lb_ = 0;
  std::int64_t true_ub_ = 0;
  std::int64_t blocks_per_element_ = 0;
  bool dense_ = false;
  std::uint64_t type_id_ = 0;
  std::uint64_t shape_digest_ = 0;
  TypeContents contents_;
};

// Convenience singletons for the common primitives.
const DatatypePtr& kByte();
const DatatypePtr& kChar();
const DatatypePtr& kInt32();
const DatatypePtr& kInt64();
const DatatypePtr& kFloat();
const DatatypePtr& kDouble();

}  // namespace gpuddt::mpi
