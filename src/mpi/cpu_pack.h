// The host (CPU) datatype engine: pack/unpack between a typed user buffer
// and a contiguous byte buffer. This is Open MPI's classic convertor - the
// reference implementation every GPU path is validated against, the engine
// used for host-resident data, and the "CPU" series of the paper's
// benchmarks.
//
// Both directions support partial progress through an explicit cursor, so
// the PML can fragment large messages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "mpi/cursor.h"
#include "mpi/datatype.h"

namespace gpuddt::mpi {

struct PackStats {
  std::int64_t bytes = 0;
  std::int64_t pieces = 0;  // contiguous pieces visited (host walk cost)
};

/// Gather at most `out.size()` bytes from `src` (laid out as `cursor`'s
/// datatype) into `out`, advancing the cursor. Returns what was moved.
PackStats cpu_pack_some(BlockCursor& cursor, const void* src,
                        std::span<std::byte> out);

/// Scatter at most `in.size()` bytes from `in` into `dst`, advancing the
/// cursor.
PackStats cpu_unpack_some(BlockCursor& cursor, std::span<const std::byte> in,
                          void* dst);

/// Whole-datatype convenience wrappers. `out` / `in` must hold exactly
/// dt->size() * count bytes.
PackStats cpu_pack(const DatatypePtr& dt, std::int64_t count, const void* src,
                   std::span<std::byte> out);
PackStats cpu_unpack(const DatatypePtr& dt, std::int64_t count,
                     std::span<const std::byte> in, void* dst);

}  // namespace gpuddt::mpi
