#include "mpi/bml.h"

namespace gpuddt::mpi {

Bml::Bml(Runtime& rt)
    : rt_(rt),
      sm_btl_(std::make_unique<SmBtl>(rt)),
      ib_btl_(std::make_unique<IbBtl>(rt)) {}

Bml::~Bml() = default;

Btl& Bml::between(int rank_a, int rank_b) {
  // Selection policy: the shared-memory BTL for co-located ranks, the IB
  // BTL otherwise. (With more BTLs this is where latency/bandwidth-based
  // scoring would live.)
  return rt_.node_of(rank_a) == rt_.node_of(rank_b) ? *sm_btl_ : *ib_btl_;
}

}  // namespace gpuddt::mpi
