// Enablement of the stream-triggered fragment-chain protocol
// (docs/protocols.md). Mirrors the GPUDDT_CHECK precedence table
// (docs/checking.md):
//
//   RuntimeConfig::stream_triggered (per-runtime tri-state)
//     > set_forced() (process-wide override; bench --stream-triggered)
//       > GPUDDT_STREAM_TRIGGERED environment variable
//         > GPUDDT_STREAM_TRIGGERED build option (compile-time default)
//
// Default off everywhere, so every existing baseline stays byte-identical
// unless a run opts in.
#pragma once

#include <optional>

namespace gpuddt::mpi {

/// Resolved process-wide default: forced > env > build option.
bool stream_triggered_default();

/// Resolution for one runtime's tri-state knob: -1 follows the
/// process-wide default, 0/1 force.
bool stream_triggered_enabled(int runtime_knob);

/// Process-wide override, strongest below the per-runtime knob (the bench
/// harness's --stream-triggered flag). nullopt restores env/build
/// resolution.
void set_stream_triggered_forced(std::optional<bool> f);

}  // namespace gpuddt::mpi
