// Datatype traversal.
//
// BlockCursor walks the compiled loop/block program of `count` elements of
// a datatype and yields the contiguous blocks in layout order. It supports
// *partial* consumption (stop mid-block after an exact byte budget), which
// is what lets the PML fragment messages and the GPU engine pipeline
// pack/unpack - the cursor is the moral equivalent of Open MPI's
// convertor position.
//
// Cursor state is a small copyable value: protocols snapshot it freely.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "mpi/datatype.h"

namespace gpuddt::mpi {

/// One contiguous piece of a datatype: `offset` bytes from the user base
/// pointer, `len` bytes long.
struct Block {
  std::int64_t offset = 0;
  std::int64_t len = 0;
};

class BlockCursor {
 public:
  /// Which compiled form to traverse. Both emit the same bytes in the
  /// same order; kCanonical walks the normalized program
  /// (mpi/canonical.h) so structurally equal types traverse - and the
  /// DEV conversion compiles - identically.
  enum class ProgramView : std::uint8_t { kCompiled, kCanonical };

  BlockCursor() = default;
  BlockCursor(DatatypePtr dt, std::int64_t count,
              ProgramView view = ProgramView::kCompiled);

  /// Produce the next piece, at most `max_bytes` long. Returns false when
  /// the traversal is complete. A block longer than `max_bytes` is split;
  /// the next call resumes inside it.
  bool next(std::int64_t max_bytes, Block* out);

  /// Convenience: full blocks.
  bool next(Block* out) { return next(INT64_MAX, out); }

  bool done() const { return remaining_ == 0; }
  std::int64_t bytes_remaining() const { return remaining_; }
  std::int64_t bytes_consumed() const { return total_ - remaining_; }
  std::int64_t total_bytes() const { return total_; }

  /// Number of blocks (including partial pieces) produced so far; the cost
  /// model charges host traversal per piece.
  std::int64_t pieces_produced() const { return pieces_; }

 private:
  struct Frame {
    std::int32_t loop_instr = 0;  // index of the kLoop instruction
    std::int64_t iter = 0;
    std::int64_t base = 0;    // frame base of the current iteration
    std::int64_t origin = 0;  // parent base + loop disp
  };

  void advance_instr();

  DatatypePtr dt_;
  const std::vector<Instr>* prog_ = nullptr;  // selected by ProgramView
  std::int64_t count_ = 0;
  std::int64_t elem_ = 0;      // current element index
  std::int64_t elem_base_ = 0; // elem_ * extent
  std::int32_t ip_ = 0;        // instruction pointer within program
  std::vector<Frame> stack_;
  std::int64_t in_block_ = 0;  // bytes consumed of the current block
  std::int64_t remaining_ = 0;
  std::int64_t total_ = 0;
  std::int64_t pieces_ = 0;
};

}  // namespace gpuddt::mpi
