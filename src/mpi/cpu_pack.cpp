#include "mpi/cpu_pack.h"

#include <cstring>
#include <stdexcept>

namespace gpuddt::mpi {

PackStats cpu_pack_some(BlockCursor& cursor, const void* src,
                        std::span<std::byte> out) {
  PackStats st;
  const auto* base = static_cast<const std::byte*>(src);
  std::int64_t room = static_cast<std::int64_t>(out.size());
  Block b;
  while (room > 0 && cursor.next(room, &b)) {
    std::memcpy(out.data() + st.bytes, base + b.offset,
                static_cast<std::size_t>(b.len));
    st.bytes += b.len;
    room -= b.len;
    ++st.pieces;
  }
  return st;
}

PackStats cpu_unpack_some(BlockCursor& cursor, std::span<const std::byte> in,
                          void* dst) {
  PackStats st;
  auto* base = static_cast<std::byte*>(dst);
  std::int64_t avail = static_cast<std::int64_t>(in.size());
  Block b;
  while (avail > 0 && cursor.next(avail, &b)) {
    std::memcpy(base + b.offset, in.data() + st.bytes,
                static_cast<std::size_t>(b.len));
    st.bytes += b.len;
    avail -= b.len;
    ++st.pieces;
  }
  return st;
}

PackStats cpu_pack(const DatatypePtr& dt, std::int64_t count, const void* src,
                   std::span<std::byte> out) {
  if (static_cast<std::int64_t>(out.size()) < dt->size() * count)
    throw std::invalid_argument("cpu_pack: output buffer too small");
  BlockCursor cur(dt, count);
  return cpu_pack_some(cur, src, out.first(
      static_cast<std::size_t>(dt->size() * count)));
}

PackStats cpu_unpack(const DatatypePtr& dt, std::int64_t count,
                     std::span<const std::byte> in, void* dst) {
  if (static_cast<std::int64_t>(in.size()) < dt->size() * count)
    throw std::invalid_argument("cpu_unpack: input buffer too small");
  BlockCursor cur(dt, count);
  return cpu_unpack_some(
      cur, in.first(static_cast<std::size_t>(dt->size() * count)), dst);
}

}  // namespace gpuddt::mpi
