#include "mpi/cursor.h"

namespace gpuddt::mpi {

BlockCursor::BlockCursor(DatatypePtr dt, std::int64_t count,
                         ProgramView view)
    : dt_(std::move(dt)), count_(count) {
  assert(count >= 0);
  prog_ = view == ProgramView::kCanonical ? &dt_->canonical_program()
                                          : &dt_->program();
  total_ = remaining_ = dt_->size() * count_;
  if (count_ == 0 || prog_->empty()) remaining_ = total_ = 0;
  elem_base_ = 0;
}

/// Move the instruction pointer past the just-finished instruction,
/// unwinding loop frames and element boundaries as needed. On return,
/// either remaining_ == 0 or ip_ points at a kBlock ready to emit, with
/// the correct frame base on top of the stack.
void BlockCursor::advance_instr() {
  const auto& prog = *prog_;
  ++ip_;
  for (;;) {
    if (ip_ >= static_cast<std::int32_t>(prog.size())) {
      // End of one element.
      if (!stack_.empty()) {
        // Malformed program (loop without end) - treat as element end.
        stack_.clear();
      }
      ++elem_;
      if (elem_ >= count_) return;  // fully done
      elem_base_ = elem_ * dt_->extent();
      ip_ = 0;
      continue;
    }
    const Instr& in = prog[ip_];
    if (in.op == Instr::Op::kBlock) {
      return;
    }
    if (in.op == Instr::Op::kLoop) {
      if (in.count <= 0) {
        ip_ = in.body_end + 1;
        continue;
      }
      Frame f;
      f.loop_instr = ip_;
      f.iter = 0;
      f.origin = (stack_.empty() ? elem_base_ : stack_.back().base) + in.disp;
      f.base = f.origin;
      stack_.push_back(f);
      ++ip_;
      continue;
    }
    // kEndLoop
    Frame& f = stack_.back();
    const Instr& lp = prog[f.loop_instr];
    ++f.iter;
    if (f.iter < lp.count) {
      f.base = f.origin + f.iter * lp.step;
      ip_ = f.loop_instr + 1;
    } else {
      stack_.pop_back();
      ++ip_;
    }
  }
}

bool BlockCursor::next(std::int64_t max_bytes, Block* out) {
  if (remaining_ == 0 || max_bytes <= 0) return false;
  const auto& prog = *prog_;
  // Position on a block: at construction ip_ == 0 which may not be a block.
  if (in_block_ == 0) {
    // If ip_ doesn't currently point at a block (fresh cursor or after
    // finishing one), find the next block.
    if (ip_ >= static_cast<std::int32_t>(prog.size()) ||
        prog[ip_].op != Instr::Op::kBlock) {
      --ip_;  // advance_instr pre-increments
      advance_instr();
      if (remaining_ == 0 || elem_ >= count_) return false;
    }
  }
  const Instr& blk = prog[ip_];
  const std::int64_t base = stack_.empty() ? elem_base_ : stack_.back().base;
  const std::int64_t avail = blk.len - in_block_;
  const std::int64_t take = std::min(avail, max_bytes);
  out->offset = base + blk.disp + in_block_;
  out->len = take;
  in_block_ += take;
  remaining_ -= take;
  ++pieces_;
  if (in_block_ == blk.len) {
    in_block_ = 0;
    if (remaining_ > 0) advance_instr();
  }
  return true;
}

}  // namespace gpuddt::mpi
