// Virtual-time primitives.
//
// Every actor in the simulation (an MPI rank's host thread, a GPU kernel
// engine, a DMA copy engine, a PCI-E or InfiniBand link) advances a logical
// clock measured in integer nanoseconds. Operations never sleep: they
// *reserve* intervals on shared resources and propagate timestamps through
// streams, events and messages. The resulting timeline is exactly what a
// discrete-event simulation would produce, while the functional side of
// every operation (the actual byte movement) executes eagerly on the
// calling thread, so correctness and timing are decoupled.
#pragma once

#include <algorithm>
#include <cstdint>

namespace gpuddt::vt {

/// Virtual time in nanoseconds since simulation start.
using Time = std::int64_t;

constexpr Time kNanosPerMicro = 1000;
constexpr Time kNanosPerMilli = 1000 * 1000;
constexpr Time kNanosPerSecond = 1000 * 1000 * 1000;

constexpr Time usec(double n) { return static_cast<Time>(n * kNanosPerMicro); }
constexpr Time msec(double n) { return static_cast<Time>(n * kNanosPerMilli); }

/// Duration of moving `bytes` over a resource sustaining `gb_per_s` (1e9
/// bytes per second). Rounds up so zero-byte transfers still take zero and
/// any positive transfer takes at least 1 ns.
constexpr Time transfer_time(std::int64_t bytes, double gb_per_s) {
  if (bytes <= 0) return 0;
  const double ns = static_cast<double>(bytes) / gb_per_s;
  const Time t = static_cast<Time>(ns);
  return t > 0 ? t : 1;
}

/// A logical clock owned by a single actor (one thread, or one serialized
/// engine). Not thread-safe by design: cross-actor propagation happens via
/// TimedResource or explicit timestamps on messages/events.
class VClock {
 public:
  VClock() = default;
  explicit VClock(Time start) : now_(start) {}

  Time now() const { return now_; }

  /// Advance by a duration (local work, e.g. CPU-side DEV conversion).
  Time advance(Time duration) {
    now_ += duration;
    return now_;
  }

  /// Wait until an external timestamp (message arrival, stream sync).
  Time wait_until(Time t) {
    now_ = std::max(now_, t);
    return now_;
  }

  void reset(Time t = 0) { now_ = t; }

 private:
  Time now_ = 0;
};

}  // namespace gpuddt::vt
