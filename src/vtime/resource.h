// Shared timed resources.
//
// A TimedResource models a serialized engine (a DMA copy engine, a network
// link): requests queue up in virtual time in the order they arrive. A
// CapacityResource models an array of identical execution slots (the SMs of
// a GPU): a task asks for `width` slots and is placed on the `width`
// earliest-available ones, which is how kernel concurrency and the
// GPU-sharing experiments are expressed.
//
// Both are thread-safe: many rank threads reserve concurrently.
#pragma once

#include <cassert>
#include <cstdint>
#include <mutex>
#include <vector>

#include "vtime/vclock.h"

namespace gpuddt::vt {

/// The interval a reservation was granted.
struct Reservation {
  Time start = 0;
  Time finish = 0;
};

/// A resource that serves one request at a time (link, copy engine).
class TimedResource {
 public:
  TimedResource() = default;

  /// Reserve `duration` ns starting no earlier than `earliest`.
  Reservation reserve(Time earliest, Time duration) {
    std::lock_guard<std::mutex> lock(mu_);
    const Time start = std::max(earliest, available_);
    const Time finish = start + duration;
    available_ = finish;
    total_busy_ += duration;
    return {start, finish};
  }

  /// Next instant the resource is free (racy snapshot, for stats only).
  Time available() const {
    std::lock_guard<std::mutex> lock(mu_);
    return available_;
  }

  /// Total virtual time this resource spent busy (utilization metrics).
  Time total_busy() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_busy_;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    available_ = 0;
    total_busy_ = 0;
  }

 private:
  mutable std::mutex mu_;
  Time available_ = 0;
  Time total_busy_ = 0;
};

/// A pool of `capacity` identical slots. A task occupying `width` slots for
/// `duration` starts once the `width` earliest-available slots are all free
/// and not before `earliest`. This deliberately simple placement policy is
/// deterministic and captures the two behaviours the paper exercises:
/// narrow kernels leave slots for concurrent work (Section 5.3), and a
/// co-running application delays pack/unpack kernels (Section 5.4).
class CapacityResource {
 public:
  explicit CapacityResource(int capacity) : slots_(capacity, Time{0}) {
    assert(capacity > 0);
  }

  int capacity() const { return static_cast<int>(slots_.size()); }

  Reservation reserve(Time earliest, Time duration, int width) {
    std::lock_guard<std::mutex> lock(mu_);
    const int n = static_cast<int>(slots_.size());
    if (width > n) width = n;
    if (width < 1) width = 1;
    // Select the `width` earliest-available slots (small n: linear scans).
    std::vector<int> chosen;
    chosen.reserve(width);
    std::vector<bool> used(slots_.size(), false);
    Time start = earliest;
    for (int k = 0; k < width; ++k) {
      int best = -1;
      for (int i = 0; i < n; ++i) {
        if (used[i]) continue;
        if (best < 0 || slots_[i] < slots_[best]) best = i;
      }
      used[best] = true;
      chosen.push_back(best);
      start = std::max(start, slots_[best]);
    }
    const Time finish = start + duration;
    for (int i : chosen) slots_[i] = finish;
    total_busy_ += duration * width;
    return {start, finish};
  }

  /// Busy slot-nanoseconds (divide by capacity for average utilization).
  Time total_busy() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_busy_;
  }

  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& s : slots_) s = 0;
    total_busy_ = 0;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Time> slots_;
  Time total_busy_ = 0;
};

}  // namespace gpuddt::vt
