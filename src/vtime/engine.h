// The event-driven simulator core.
//
// Until this engine landed, every simulated MPI rank was an OS thread
// cooperating through mpi::TurnScheduler: deterministic, but capped at
// tens of ranks (a thread, a kernel stack and two context switches per
// scheduling point each). EventEngine keeps the exact same cooperative
// scheduling *policy* while replacing the threads with resumable
// continuations (stackful coroutines over ucontext): every rank body runs
// on its own small mmap'd stack, and a single deterministic event loop on
// the calling thread dispatches them one at a time. One process simulates
// 1000+ ranks with zero kernel involvement per handoff.
//
// Dispatch order is the contract. Each resume is an event stamped
// (vtime, task, seq) - the resumed rank's virtual clock, its id, and a
// globally monotone sequence number - and the loop dispatches the unique
// next event determined by the cooperative rotation: the first runnable
// task after the one that just suspended, in cyclic id order. That is
// byte-for-byte the TurnScheduler handoff rule, so every touch of shared
// virtual-time state (arenas, timed resources, inboxes) happens in the
// same program-defined order under either scheduler and all checked-in
// baselines replay identically (docs/simulator.md, docs/determinism.md).
//
// Suspension points (identical to the thread scheduler's):
//   * wait_for_message(t) - t blocks until note_message(t) delivers;
//   * yield(t)            - t stays runnable but every other runnable
//                           task gets one turn first (empty-inbox polls);
//   * the task body returning or throwing.
//
// Deadlock is detected exactly: when no task is runnable and some are
// blocked, every blocked task is resumed once to throw DeadlockError
// carrying the per-task pending-operation report supplied by the
// installed block describer (the MPI runtime wires this to
// Pml::pending_summary, so the error names tags/peers/contexts, not just
// rank ids).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>

#include "vtime/vclock.h"

namespace gpuddt::vt {

/// Produces a one-line description of what a blocked task is waiting on
/// (e.g. "recv(src=1, tag=7, ctx=0)"). Used to build deadlock reports.
using BlockDescriber = std::function<std::string(int task)>;

/// All remaining tasks are blocked on empty inboxes: nobody can ever
/// deliver. Thrown inside every blocked task; the message lists each
/// blocked task's pending operations.
class DeadlockError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The scheduling interface rank bodies block through. Implemented by
/// the event-driven EventEngine (continuations, the default) and by the
/// legacy mpi::TurnScheduler (one parked OS thread per rank), which the
/// scheduler-equivalence suite replays against each other.
class TaskScheduler {
 public:
  virtual ~TaskScheduler() = default;

  /// Suspend until a message is delivered to `task` (returns immediately
  /// if one arrived since the last wait/poll). Throws DeadlockError when
  /// every remaining task is blocked.
  virtual void wait_for_message(int task) = 0;

  /// Polling suspension (empty-inbox progress): every other runnable
  /// task gets one turn, then `task` resumes. No-op when nothing else
  /// can run.
  virtual void yield(int task) = 0;

  /// A message was delivered to `task`'s inbox: mark it pending and make
  /// the task runnable. Called by the currently-executing task.
  virtual void note_message(int task) = 0;

  /// Install the pending-op describer consulted when composing deadlock
  /// reports. Optional; without it reports carry task ids only.
  virtual void set_block_describer(BlockDescriber d) = 0;
};

/// Compose the exact-deadlock report shared by both scheduler backends:
/// one line per blocked task with its pending-operation summary from the
/// describer (task ids only when no describer is installed).
std::string compose_deadlock_report(int ntasks,
                                    const std::function<bool(int)>& is_blocked,
                                    const BlockDescriber& describer);

/// Counters the event loop keeps about its own operation. Deterministic
/// for a fixed program (they count scheduling decisions, which are a
/// pure function of the program), so bench_sim_throughput gates them.
struct EngineStats {
  std::uint64_t dispatches = 0;  ///< continuation resumes (event seq)
  std::uint64_t wakeups = 0;     ///< note_message deliveries
  std::uint64_t yields = 0;      ///< polling suspensions taken
  Time max_vtime = 0;            ///< latest virtual clock seen at suspend
};

/// The event-driven core: runs `ntasks` bodies as stackful continuations
/// on the calling thread. See the file comment for the dispatch policy.
class EventEngine final : public TaskScheduler {
 public:
  struct Options {
    /// Usable stack bytes per continuation (rounded up to whole pages; a
    /// guard page below the stack turns overflow into a fault, not
    /// silent corruption).
    std::size_t stack_bytes = std::size_t{1} << 20;
  };

  explicit EventEngine(int ntasks) : EventEngine(ntasks, Options()) {}
  EventEngine(int ntasks, Options opts);
  ~EventEngine() override;

  EventEngine(const EventEngine&) = delete;
  EventEngine& operator=(const EventEngine&) = delete;

  /// Run every task body to completion. Dispatches task 0 first, then
  /// follows the rotation. Rethrows the lowest-id failing task's
  /// exception after all tasks have finished or died.
  void run(const std::function<void(int task)>& body);

  // --- TaskScheduler (called from inside task bodies) -------------------
  void wait_for_message(int task) override;
  void yield(int task) override;
  void note_message(int task) override;
  void set_block_describer(BlockDescriber d) override;

  /// Report the resumed task's virtual clock to the dispatch stamp. The
  /// runtime installs a probe reading the rank's vt::VClock; without one
  /// EngineStats::max_vtime stays 0.
  void set_clock_probe(std::function<Time(int)> probe);

  EngineStats stats() const;

  struct Impl;  // public so the C trampoline entry point can reach it

 private:
  std::unique_ptr<Impl> impl_;
};

}  // namespace gpuddt::vt
