#include "vtime/engine.h"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <cstring>
#include <utility>
#include <vector>

// Sanitizers need to be told about stack switches: ASan tracks the
// current stack region to classify addresses, TSan models each fiber as
// a logical thread. Without these hooks the ASan/TSan CI builds report
// false stack-use-after-return / data-race errors on every handoff.
#if defined(__SANITIZE_ADDRESS__)
#define GPUDDT_ENGINE_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GPUDDT_ENGINE_ASAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define GPUDDT_ENGINE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define GPUDDT_ENGINE_TSAN 1
#endif
#endif
#if defined(GPUDDT_ENGINE_ASAN)
#include <sanitizer/asan_interface.h>
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(GPUDDT_ENGINE_TSAN)
#include <sanitizer/tsan_interface.h>
#endif

namespace gpuddt::vt {
namespace {

// A continuation's lifecycle mirrors TurnScheduler's rank states.
enum class TaskState { kRunnable, kBlocked, kFinished };

struct Continuation {
  ucontext_t ctx{};
  void* map_base = nullptr;      // mmap region (guard page + stack)
  std::size_t map_bytes = 0;
  void* stack_lo = nullptr;      // usable stack (above the guard page)
  std::size_t stack_bytes = 0;
  TaskState state = TaskState::kRunnable;
  bool pending = false;          // undelivered message flag
  bool started = false;
  std::exception_ptr error;
#if defined(GPUDDT_ENGINE_TSAN)
  void* tsan_fiber = nullptr;
#endif
};

}  // namespace

struct EventEngine::Impl {
  int ntasks = 0;
  Options opts;
  std::vector<Continuation> tasks;
  ucontext_t main_ctx{};
  const std::function<void(int)>* body = nullptr;
  BlockDescriber describer;
  std::function<Time(int)> clock_probe;
  EngineStats st;

  int active = -1;       // task currently executing (-1 = event loop)
  bool deadlock = false; // set once the loop proves no progress is possible
  std::string deadlock_report;
  bool running = false;

#if defined(GPUDDT_ENGINE_TSAN)
  void* tsan_main = nullptr;
#endif
#if defined(GPUDDT_ENGINE_ASAN)
  // Fake-stack handle saved when the *event loop* switches away; the
  // matching finish call runs when control returns to the loop. Each
  // continuation saves its own handle in a stack local across its
  // swapcontext call, but the loop switches into many fibers, so its
  // handle lives here.
  void* loop_fake_stack = nullptr;
  // Bounds of the event loop's own stack, reported by ASan on the first
  // entry into a fiber; every fiber->loop switch names them as the
  // destination so ASan tracks the correct current stack while the loop
  // (and anything it rethrows into) executes.
  const void* main_stack_bottom = nullptr;
  std::size_t main_stack_size = 0;
#endif

  void switch_out_of_task(int task);
  void switch_into_task(int task);
  void entry(int task);
  int next_runnable_after(int from) const;
  void dispatch_loop();
  [[noreturn]] void throw_deadlock() const;
  std::string compose_deadlock_report() const;
};

namespace {

// makecontext only forwards ints, so the Impl pointer travels as two
// halves and is reassembled in the trampoline.
void trampoline(unsigned hi, unsigned lo, unsigned task) {
  auto bits = (static_cast<std::uintptr_t>(hi) << 32U) |
              static_cast<std::uintptr_t>(lo);
  reinterpret_cast<EventEngine::Impl*>(bits)->entry(static_cast<int>(task));
}

}  // namespace

EventEngine::EventEngine(int ntasks, Options opts)
    : impl_(std::make_unique<Impl>()) {
  if (ntasks <= 0) {
    throw std::invalid_argument("EventEngine: ntasks must be positive");
  }
  impl_->ntasks = ntasks;
  impl_->opts = opts;
}

EventEngine::~EventEngine() {
  for (auto& c : impl_->tasks) {
#if defined(GPUDDT_ENGINE_TSAN)
    if (c.tsan_fiber != nullptr) {
      __tsan_destroy_fiber(c.tsan_fiber);
    }
#endif
    if (c.map_base != nullptr) {
      ::munmap(c.map_base, c.map_bytes);
    }
  }
}

void EventEngine::set_block_describer(BlockDescriber d) {
  impl_->describer = std::move(d);
}

void EventEngine::set_clock_probe(std::function<Time(int)> probe) {
  impl_->clock_probe = std::move(probe);
}

EngineStats EventEngine::stats() const { return impl_->st; }

void EventEngine::run(const std::function<void(int)>& body) {
  Impl& im = *impl_;
  if (im.running || !im.tasks.empty()) {
    throw std::logic_error("EventEngine::run: engine already used");
  }
  im.running = true;
  im.body = &body;

  const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  std::size_t stack_bytes = im.opts.stack_bytes;
  stack_bytes = ((stack_bytes + page - 1) / page) * page;

  im.tasks.resize(static_cast<std::size_t>(im.ntasks));
  for (int t = 0; t < im.ntasks; ++t) {
    Continuation& c = im.tasks[static_cast<std::size_t>(t)];
    c.map_bytes = stack_bytes + page;  // one guard page below the stack
    void* base = ::mmap(nullptr, c.map_bytes, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (base == MAP_FAILED) {
      throw std::runtime_error("EventEngine: mmap of continuation stack "
                               "failed (raise ulimit -v or lower "
                               "sim_stack_bytes)");
    }
    c.map_base = base;
    if (::mprotect(base, page, PROT_NONE) != 0) {
      throw std::runtime_error("EventEngine: mprotect(guard page) failed");
    }
    c.stack_lo = static_cast<char*>(base) + page;
    c.stack_bytes = stack_bytes;

    if (::getcontext(&c.ctx) != 0) {
      throw std::runtime_error("EventEngine: getcontext failed");
    }
    c.ctx.uc_stack.ss_sp = c.stack_lo;
    c.ctx.uc_stack.ss_size = c.stack_bytes;
    c.ctx.uc_link = nullptr;  // bodies never fall off the trampoline
    auto bits = reinterpret_cast<std::uintptr_t>(&im);
    ::makecontext(&c.ctx, reinterpret_cast<void (*)()>(trampoline), 3,
                  static_cast<unsigned>(bits >> 32U),
                  static_cast<unsigned>(bits & 0xffffffffU),
                  static_cast<unsigned>(t));
#if defined(GPUDDT_ENGINE_TSAN)
    c.tsan_fiber = __tsan_create_fiber(0);
#endif
  }
#if defined(GPUDDT_ENGINE_TSAN)
  im.tsan_main = __tsan_get_current_fiber();
#endif

  im.dispatch_loop();
  im.running = false;

  // Mirror mpi::Runtime's thread-mode policy: surface the lowest-id
  // failing task's exception.
  for (auto& c : im.tasks) {
    if (c.error) {
      std::rethrow_exception(c.error);
    }
  }
}

// The event loop: repeatedly dispatch the unique next event — the first
// runnable task after the one that last ran, in cyclic id order (the
// TurnScheduler rotation). `last` starts at ntasks-1 so the first
// dispatch is task 0.
void EventEngine::Impl::dispatch_loop() {
  int last = ntasks - 1;
  for (;;) {
    const int next = next_runnable_after(last);
    if (next >= 0) {
      switch_into_task(next);
      last = next;
      continue;
    }
    bool any_blocked = false;
    for (const auto& c : tasks) {
      any_blocked = any_blocked || c.state == TaskState::kBlocked;
    }
    if (!any_blocked) {
      return;  // every task finished
    }
    // No task is runnable but some are blocked: exact deadlock. Compose
    // the report once, then resume each blocked task so it throws
    // DeadlockError from its wait site (matching TurnScheduler, where
    // every parked rank thread wakes and throws).
    deadlock_report = compose_deadlock_report();
    deadlock = true;
    for (int t = 0; t < ntasks; ++t) {
      if (tasks[static_cast<std::size_t>(t)].state == TaskState::kBlocked) {
        switch_into_task(t);
      }
    }
    return;
  }
}

int EventEngine::Impl::next_runnable_after(int from) const {
  for (int i = 1; i <= ntasks; ++i) {
    const int r = (from + i) % ntasks;
    if (tasks[static_cast<std::size_t>(r)].state == TaskState::kRunnable) {
      return r;
    }
  }
  return -1;
}

// Resume `task` on its own stack; returns when the task suspends again.
void EventEngine::Impl::switch_into_task(int task) {
  Continuation& c = tasks[static_cast<std::size_t>(task)];
  active = task;
  ++st.dispatches;
  if (clock_probe) {
    const Time now = clock_probe(task);
    st.max_vtime = now > st.max_vtime ? now : st.max_vtime;
  }
  c.started = true;
#if defined(GPUDDT_ENGINE_ASAN)
  __sanitizer_start_switch_fiber(&loop_fake_stack, c.stack_lo, c.stack_bytes);
#endif
#if defined(GPUDDT_ENGINE_TSAN)
  __tsan_switch_to_fiber(c.tsan_fiber, 0);
#endif
  if (::swapcontext(&main_ctx, &c.ctx) != 0) {
    throw std::runtime_error("EventEngine: swapcontext into task failed");
  }
#if defined(GPUDDT_ENGINE_ASAN)
  __sanitizer_finish_switch_fiber(loop_fake_stack, nullptr, nullptr);
#endif
  active = -1;
}

// Suspend the currently-running `task` back to the event loop; returns
// when the loop next dispatches this task.
void EventEngine::Impl::switch_out_of_task(int task) {
  Continuation& c = tasks[static_cast<std::size_t>(task)];
  const bool dying = c.state == TaskState::kFinished;
#if defined(GPUDDT_ENGINE_ASAN)
  void* fake = nullptr;
  // A finished continuation never resumes: pass nullptr so ASan releases
  // its fake-stack bookkeeping instead of waiting for a resume.
  __sanitizer_start_switch_fiber(dying ? nullptr : &fake, main_stack_bottom,
                                 main_stack_size);
#else
  (void)dying;
#endif
#if defined(GPUDDT_ENGINE_TSAN)
  __tsan_switch_to_fiber(tsan_main, 0);
#endif
  if (::swapcontext(&c.ctx, &main_ctx) != 0) {
    throw std::runtime_error("EventEngine: swapcontext to loop failed");
  }
#if defined(GPUDDT_ENGINE_ASAN)
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#endif
}

void EventEngine::Impl::entry(int task) {
#if defined(GPUDDT_ENGINE_ASAN)
  // Complete the fiber switch the event loop started for our first
  // dispatch (no prior save on this brand-new stack). The out-params
  // report the stack we came from - the event loop's - which later
  // fiber->loop switches must name as their destination.
  __sanitizer_finish_switch_fiber(nullptr, &main_stack_bottom,
                                  &main_stack_size);
#endif
  Continuation& c = tasks[static_cast<std::size_t>(task)];
  try {
    (*body)(task);
  } catch (...) {
    c.error = std::current_exception();
  }
  c.state = TaskState::kFinished;
  switch_out_of_task(task);
  // Unreachable: a finished continuation is never redispatched.
  std::abort();
}

void EventEngine::Impl::throw_deadlock() const {
  throw DeadlockError(deadlock_report);
}

std::string EventEngine::Impl::compose_deadlock_report() const {
  return vt::compose_deadlock_report(
      ntasks,
      [this](int t) {
        return tasks[static_cast<std::size_t>(t)].state == TaskState::kBlocked;
      },
      describer);
}

std::string compose_deadlock_report(int ntasks,
                                    const std::function<bool(int)>& is_blocked,
                                    const BlockDescriber& describer) {
  std::string out =
      "deadlock detected: no rank is runnable and no message can arrive; "
      "blocked ranks:";
  for (int t = 0; t < ntasks; ++t) {
    if (!is_blocked(t)) {
      continue;
    }
    out += "\n  rank " + std::to_string(t);
    if (describer) {
      out += ": " + describer(t);
    }
  }
  return out;
}

void EventEngine::wait_for_message(int task) {
  Impl& im = *impl_;
  Continuation& c = im.tasks[static_cast<std::size_t>(task)];
  if (c.pending) {
    c.pending = false;
    return;
  }
  c.state = TaskState::kBlocked;
  im.switch_out_of_task(task);
  if (im.deadlock) {
    im.throw_deadlock();
  }
  c.pending = false;
}

void EventEngine::yield(int task) {
  Impl& im = *impl_;
  // Stay runnable; suspending hands the rotation to the next runnable
  // task. If nothing else can run the loop redispatches us immediately,
  // which is TurnScheduler's "yield with no other runnable returns
  // without switching" — one extra dispatch, same observable behavior.
  if (im.next_runnable_after(task) == task) {
    return;  // no other runnable task: true no-op, matching TurnScheduler
  }
  ++im.st.yields;
  im.switch_out_of_task(task);
  if (im.deadlock) {
    im.throw_deadlock();
  }
}

void EventEngine::note_message(int task) {
  Impl& im = *impl_;
  Continuation& c = im.tasks[static_cast<std::size_t>(task)];
  c.pending = true;
  ++im.st.wakeups;
  if (c.state == TaskState::kBlocked) {
    c.state = TaskState::kRunnable;
  }
}

}  // namespace gpuddt::vt
