// An OpenSHMEM-flavoured one-sided layer over the same substrate.
//
// The paper's conclusion: "the ideas are generic and can be easily ported
// not only to different programming paradigms (OpenSHMEM and OpenCL)...".
// This module demonstrates that port: a symmetric heap per PE (allocated
// in GPU memory), blocking put/get, strided iput/iget, and - the piece
// OpenSHMEM itself lacks (Section 2.1's critique of [11]) - *datatype*
// put/get that run the GPU datatype engine on both sides, so
// non-contiguous GPU data moves with the same pipelined machinery as the
// MPI path.
//
// Implementation notes: symmetric-heap offsets are identical on every PE,
// so a remote address is (peer heap base + local offset) - exactly the
// CUDA IPC model of Section 4.1. Puts/gets are one-sided BTL RDMA with
// virtual-time accounting; quiet() waits for outstanding one-sided ops.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "mpi/btl.h"
#include "mpi/runtime.h"

namespace gpuddt::shmem {

class SymmetricHeap;

/// Per-PE handle (one per rank thread), created on a shared heap plan.
class Pe {
 public:
  Pe(mpi::Process& p, SymmetricHeap& heap);

  int my_pe() const { return proc_.rank(); }
  int n_pes() const { return proc_.size(); }

  /// Symmetric allocation: every PE must call with the same size sequence
  /// (collective, like shmem_malloc). Returns this PE's local address.
  void* malloc(std::size_t bytes);

  /// Blocking contiguous put/get of raw bytes.
  void putmem(void* dest, const void* src, std::size_t bytes, int pe);
  void getmem(void* dest, const void* src, std::size_t bytes, int pe);

  /// Non-blocking variants; completion at quiet().
  void putmem_nbi(void* dest, const void* src, std::size_t bytes, int pe);
  void getmem_nbi(void* dest, const void* src, std::size_t bytes, int pe);

  /// Strided put/get (shmem_iput/iget): `n` elements of `elem` bytes,
  /// destination stride `dst`, source stride `sst` (strides in elements).
  void iput(void* dest, const void* src, std::int64_t dst, std::int64_t sst,
            std::size_t n, std::size_t elem, int pe);
  void iget(void* dest, const void* src, std::int64_t dst, std::int64_t sst,
            std::size_t n, std::size_t elem, int pe);

  /// Datatype put: pack `count` elements of `dt` from local `src` with
  /// the GPU datatype engine and scatter into the peer's symmetric `dest`
  /// with the same layout. The extension the paper's Section 2.1 points
  /// out OpenSHMEM is missing.
  void put_datatype(void* dest, const void* src, const mpi::DatatypePtr& dt,
                    std::int64_t count, int pe);
  void get_datatype(void* dest, const void* src, const mpi::DatatypePtr& dt,
                    std::int64_t count, int pe);

  /// Complete all outstanding non-blocking one-sided operations.
  void quiet();

  /// Global barrier (also implies quiet, like shmem_barrier_all).
  void barrier_all();

  mpi::Process& process() { return proc_; }

 private:
  /// Translate a local symmetric address to the peer's address space.
  std::byte* translate(const void* local_sym, int pe) const;
  mpi::Btl& btl_to(int pe);

  mpi::Process& proc_;
  SymmetricHeap& heap_;
  core::GpuDatatypeEngine engine_;
  vt::Time last_nbi_ = 0;  // completion horizon of non-blocking ops
  std::size_t alloc_cursor_ = 0;
};

/// The world's symmetric heap: one same-sized device region per PE, at
/// identical offsets. Construct once, share with every rank thread.
class SymmetricHeap {
 public:
  SymmetricHeap(mpi::Runtime& rt, std::size_t bytes_per_pe);

  std::size_t bytes_per_pe() const { return bytes_per_pe_; }
  std::byte* base(int pe) const { return bases_.at(pe); }

 private:
  friend class Pe;
  std::size_t bytes_per_pe_;
  std::vector<std::byte*> bases_;
};

}  // namespace gpuddt::shmem
