#include "shmem/shmem.h"

#include <cstring>
#include <stdexcept>
#include <string>

#include "mpi/pml.h"
#include "obs/recorder.h"

namespace gpuddt::shmem {

namespace {

/// The initiator-side engine carries the PE's rank so its kernel trace
/// events land under the right rank process in the Chrome export.
core::EngineConfig pe_engine_cfg(mpi::Process& p) {
  core::EngineConfig ec;
  ec.recorder = p.config().recorder;
  ec.trace_pid = p.rank();
  return ec;
}

/// One-sided-op observability (docs/metrics.md `shmem.*` family): call +
/// byte counters, bytes split direct (RDMA straight from/to symmetric
/// memory) vs. staged (datatype ops bounced through a packed device
/// staging buffer), plus one trace span per call.
void record_shmem(mpi::Process& p, const char* op, vt::Time begin,
                  vt::Time end, std::int64_t bytes, bool staged,
                  std::uint64_t flow = 0, std::uint64_t shape = 0) {
  obs::Recorder* rec = p.config().recorder;
  if (rec == nullptr) return;
  const std::string prefix = std::string("shmem.") + op;
  obs::count(rec, prefix + ".calls");
  obs::count(rec, prefix + ".bytes", bytes);
  if (bytes > 0)
    obs::count(rec, staged ? "shmem.bytes.staged" : "shmem.bytes.direct",
               bytes);
  obs::trace(rec, {op, "shmem", begin, end, p.rank(), bytes, p.rank(), flow});
  // Datatype ops close their flow here: the initiating PE drives both the
  // pack and unpack halves, so this is the whole-op completion.
  if (flow != 0 && rec->flowstats().enabled()) {
    rec->flowstats().complete(
        {flow, std::string("shmem.") + op, shape, bytes, begin, end, 1});
  }
}

}  // namespace

SymmetricHeap::SymmetricHeap(mpi::Runtime& rt, std::size_t bytes_per_pe)
    : bytes_per_pe_(bytes_per_pe) {
  bases_.resize(rt.config().world_size);
  for (int r = 0; r < rt.config().world_size; ++r) {
    // Carve each PE's heap out of its device's arena directly (setup-time
    // action, no virtual cost: mirrors the symmetric heap created at
    // shmem_init).
    bases_[r] = rt.machine()
                    .device(rt.device_of(r))
                    .arena()
                    .allocate(bytes_per_pe);
  }
}

Pe::Pe(mpi::Process& p, SymmetricHeap& heap)
    : proc_(p), heap_(heap), engine_(p.gpu(), pe_engine_cfg(p)) {}

void* Pe::malloc(std::size_t bytes) {
  const std::size_t aligned = (bytes + 511) / 512 * 512;
  if (alloc_cursor_ + aligned > heap_.bytes_per_pe())
    throw std::bad_alloc();
  void* p = heap_.base(my_pe()) + alloc_cursor_;
  alloc_cursor_ += aligned;
  return p;
}

std::byte* Pe::translate(const void* local_sym, int pe) const {
  const auto* b = static_cast<const std::byte*>(local_sym);
  const std::byte* mine = heap_.base(my_pe());
  if (b < mine || b >= mine + heap_.bytes_per_pe())
    throw std::invalid_argument("shmem: address not on the symmetric heap");
  return heap_.base(pe) + (b - mine);
}

mpi::Btl& Pe::btl_to(int pe) {
  return proc_.runtime().btl_between(proc_.rank(), pe);
}

void Pe::putmem(void* dest, const void* src, std::size_t bytes, int pe) {
  putmem_nbi(dest, src, bytes, pe);
  quiet();
}

void Pe::getmem(void* dest, const void* src, std::size_t bytes, int pe) {
  getmem_nbi(dest, src, bytes, pe);
  quiet();
}

void Pe::putmem_nbi(void* dest, const void* src, std::size_t bytes, int pe) {
  std::byte* remote = translate(dest, pe);
  const vt::Time begin = proc_.clock().now();
  const vt::Time t =
      btl_to(pe).rdma_put(proc_, pe, remote, src, bytes, begin);
  last_nbi_ = std::max(last_nbi_, t);
  record_shmem(proc_, "put", begin, t,
               static_cast<std::int64_t>(bytes), /*staged=*/false);
}

void Pe::getmem_nbi(void* dest, const void* src, std::size_t bytes, int pe) {
  const std::byte* remote = translate(src, pe);
  const vt::Time begin = proc_.clock().now();
  const vt::Time t =
      btl_to(pe).rdma_get(proc_, pe, dest, remote, bytes, begin);
  last_nbi_ = std::max(last_nbi_, t);
  record_shmem(proc_, "get", begin, t,
               static_cast<std::int64_t>(bytes), /*staged=*/false);
}

void Pe::iput(void* dest, const void* src, std::int64_t dst, std::int64_t sst,
              std::size_t n, std::size_t elem, int pe) {
  // Bytes are tallied by the per-element shmem.put records.
  obs::count(proc_.config().recorder, "shmem.iput.calls");
  auto* d = static_cast<std::byte*>(dest);
  const auto* s = static_cast<const std::byte*>(src);
  for (std::size_t i = 0; i < n; ++i) {
    putmem_nbi(d + static_cast<std::int64_t>(i) * dst *
                       static_cast<std::int64_t>(elem),
               s + static_cast<std::int64_t>(i) * sst *
                       static_cast<std::int64_t>(elem),
               elem, pe);
  }
  quiet();
}

void Pe::iget(void* dest, const void* src, std::int64_t dst, std::int64_t sst,
              std::size_t n, std::size_t elem, int pe) {
  obs::count(proc_.config().recorder, "shmem.iget.calls");
  auto* d = static_cast<std::byte*>(dest);
  const auto* s = static_cast<const std::byte*>(src);
  for (std::size_t i = 0; i < n; ++i) {
    getmem_nbi(d + static_cast<std::int64_t>(i) * dst *
                       static_cast<std::int64_t>(elem),
               s + static_cast<std::int64_t>(i) * sst *
                       static_cast<std::int64_t>(elem),
               elem, pe);
  }
  quiet();
}

void Pe::put_datatype(void* dest, const void* src, const mpi::DatatypePtr& dt,
                      std::int64_t count, int pe) {
  using Dir = core::GpuDatatypeEngine::Dir;
  const std::int64_t total = dt->size() * count;
  if (total == 0) return;
  const vt::Time begin = proc_.clock().now();
  // Pack locally with the GPU engine, ship the packed stream one-sided,
  // and unpack into the peer's symmetric memory (also with OUR engine:
  // one-sided means the target does not participate - the paper's "ideas
  // are generic" port; kernels run on the initiator's device, remote
  // accesses priced as peer traffic).
  auto* staging =
      static_cast<std::byte*>(sg::Malloc(proc_.gpu(), total));
  auto pack = engine_.start(Dir::kPack, dt, count,
                            const_cast<void*>(src));
  // One flow id for the whole put: fragment k's pack and unpack spans
  // chain together in the trace (docs/tracing.md flow grammar).
  const std::uint64_t id = proc_.pml().allocate_id();
  std::int64_t frag = 0;
  vt::Time ready = 0;
  while (!pack->done()) {
    pack->set_flow(mpi::frag_flow(proc_.rank(), id, frag++));
    const auto r = engine_.process_some(
        *pack, staging + pack->bytes_done(), total - pack->bytes_done());
    if (r.bytes == 0) break;
    ready = r.ready;
  }
  engine_.finish(*pack);
  std::byte* remote = translate(dest, pe);
  auto unpack = engine_.start(Dir::kUnpack, dt, count, remote);
  frag = 0;
  while (!unpack->done()) {
    unpack->set_flow(mpi::frag_flow(proc_.rank(), id, frag++));
    const auto r = engine_.process_some(
        *unpack, staging + unpack->bytes_done(),
        total - unpack->bytes_done(), ready);
    if (r.bytes == 0) break;
    ready = r.ready;
  }
  engine_.finish(*unpack);
  last_nbi_ = std::max(last_nbi_, ready);
  record_shmem(proc_, "put_datatype", begin, ready, total, /*staged=*/true,
               mpi::frag_flow(proc_.rank(), id, 0), dt->shape_digest());
  sg::Free(proc_.gpu(), staging);
  quiet();
}

void Pe::get_datatype(void* dest, const void* src, const mpi::DatatypePtr& dt,
                      std::int64_t count, int pe) {
  using Dir = core::GpuDatatypeEngine::Dir;
  const std::int64_t total = dt->size() * count;
  if (total == 0) return;
  const vt::Time begin = proc_.clock().now();
  auto* staging =
      static_cast<std::byte*>(sg::Malloc(proc_.gpu(), total));
  const std::byte* remote = translate(src, pe);
  auto pack = engine_.start(Dir::kPack, dt, count,
                            const_cast<std::byte*>(remote));
  const std::uint64_t id = proc_.pml().allocate_id();
  std::int64_t frag = 0;
  vt::Time ready = 0;
  while (!pack->done()) {
    pack->set_flow(mpi::frag_flow(proc_.rank(), id, frag++));
    const auto r = engine_.process_some(
        *pack, staging + pack->bytes_done(), total - pack->bytes_done());
    if (r.bytes == 0) break;
    ready = r.ready;
  }
  engine_.finish(*pack);
  auto unpack = engine_.start(Dir::kUnpack, dt, count, dest);
  frag = 0;
  while (!unpack->done()) {
    unpack->set_flow(mpi::frag_flow(proc_.rank(), id, frag++));
    const auto r = engine_.process_some(
        *unpack, staging + unpack->bytes_done(),
        total - unpack->bytes_done(), ready);
    if (r.bytes == 0) break;
    ready = r.ready;
  }
  engine_.finish(*unpack);
  last_nbi_ = std::max(last_nbi_, ready);
  record_shmem(proc_, "get_datatype", begin, ready, total, /*staged=*/true,
               mpi::frag_flow(proc_.rank(), id, 0), dt->shape_digest());
  sg::Free(proc_.gpu(), staging);
  quiet();
}

void Pe::quiet() {
  proc_.clock().wait_until(last_nbi_);
  engine_.synchronize();
}

void Pe::barrier_all() {
  quiet();
  mpi::Comm(proc_).barrier();
}

}  // namespace gpuddt::shmem
